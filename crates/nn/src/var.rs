//! The autograd variable and the reverse-mode tape.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

use geotorch_tensor::Tensor;

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static NO_GRAD: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with tape recording disabled on this thread.
///
/// Inside the closure every op result is a *leaf*: [`Var::from_op`] drops
/// the parent list and the backward closure, so no autograd graph is
/// built and intermediate values are freed as soon as the ops that
/// consume them finish. This is the inference fast path — the serving
/// scheduler and the trainer's evaluation passes run under it — and it
/// mirrors `torch.no_grad()`.
///
/// Nesting is allowed; the previous state is restored on exit (also on
/// panic). Calling `backward` on a value produced under `no_grad` is a
/// no-op beyond seeding that value's own gradient slot.
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            NO_GRAD.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(NO_GRAD.with(|c| c.replace(true)));
    f()
}

/// Whether tape recording is currently disabled on this thread.
pub fn is_no_grad() -> bool {
    NO_GRAD.with(|c| c.get())
}

/// Computes gradients for a node's parents given the node's output
/// gradient. Returns one tensor per parent, in parent order.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

pub(crate) struct VarInner {
    id: usize,
    pub(crate) value: Tensor,
    pub(crate) grad: Option<Tensor>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
}

/// A node in the autograd graph: a tensor value plus the bookkeeping needed
/// to differentiate through the operations that produced it.
///
/// `Var` is a cheap reference-counted handle; cloning shares the node.
/// The graph is single-threaded (like PyTorch's Python-side tape); kernels
/// inside each op may still run data-parallel via `geotorch_tensor::Device`.
#[derive(Clone)]
pub struct Var {
    inner: Rc<RefCell<VarInner>>,
}

impl Var {
    fn make(value: Tensor, requires_grad: bool, parents: Vec<Var>, backward: Option<BackwardFn>) -> Var {
        Var {
            inner: Rc::new(RefCell::new(VarInner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value,
                grad: None,
                requires_grad,
                parents,
                backward,
            })),
        }
    }

    /// A leaf that does not require gradients (inputs, labels, masks).
    pub fn constant(value: Tensor) -> Var {
        Var::make(value, false, Vec::new(), None)
    }

    /// A trainable leaf: gradients accumulate here during backward.
    pub fn parameter(value: Tensor) -> Var {
        Var::make(value, true, Vec::new(), None)
    }

    /// Internal: an op result node. Under [`no_grad`] the tape entry is
    /// elided — the result is a plain leaf with no parents and no
    /// backward closure.
    pub(crate) fn from_op(value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Var {
        if is_no_grad() {
            drop(parents);
            drop(backward);
            return Var::make(value, false, Vec::new(), None);
        }
        Var::make(value, false, parents, Some(backward))
    }

    /// Stable identity of this node.
    pub fn id(&self) -> usize {
        self.inner.borrow().id
    }

    /// The value (O(1) clone of the shared buffer).
    pub fn value(&self) -> Tensor {
        self.inner.borrow().value.clone()
    }

    /// Shape of the value.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.borrow().value.shape().to_vec()
    }

    /// The accumulated gradient, if backward has reached this node.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.borrow().grad.clone()
    }

    /// Whether gradients accumulate at this leaf.
    pub fn requires_grad(&self) -> bool {
        self.inner.borrow().requires_grad
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        self.inner.borrow_mut().grad = None;
    }

    /// Replace the value in place (used by optimizers; does not touch the
    /// tape).
    pub fn assign(&self, value: Tensor) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.value.shape(),
            value.shape(),
            "Var::assign shape mismatch"
        );
        inner.value = value;
    }

    /// Mutate the value through `f` without going through a fresh tensor
    /// (the in-place optimiser path; does not touch the tape). When the
    /// value's storage is uniquely held — no live tape closure or caller
    /// clone — `f`'s in-place tensor ops mutate the buffer directly;
    /// shared storage copy-on-writes, so results are always identical to
    /// [`Var::assign`] with a freshly built tensor.
    ///
    /// # Panics
    /// If `f` changes the value's shape.
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        let mut inner = self.inner.borrow_mut();
        let shape = inner.value.shape().to_vec();
        f(&mut inner.value);
        assert_eq!(
            inner.value.shape(),
            &shape[..],
            "Var::update_value must preserve shape"
        );
    }

    /// A new constant leaf sharing this node's current value — gradients do
    /// not flow through.
    pub fn detach(&self) -> Var {
        Var::constant(self.value())
    }

    /// Run reverse-mode differentiation from this node.
    ///
    /// The node is seeded with a gradient of ones (so for scalar losses this
    /// computes ∂loss/∂p for every parameter `p` reachable on the tape).
    /// Gradients *accumulate*: call [`Var::zero_grad`] (or
    /// `Optimizer::zero_grad`) between steps.
    pub fn backward(&self) {
        let seed = Tensor::ones(self.inner.borrow().value.shape());
        self.backward_with(seed);
    }

    /// Seed or accumulate a gradient directly (used by gradient-surgery
    /// utilities like `schedule::clip_grad_norm`).
    ///
    /// # Panics
    /// If the gradient shape does not match the value shape.
    pub fn seed_grad(&self, grad: Tensor) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.value.shape(),
            grad.shape(),
            "seed_grad shape mismatch"
        );
        match &mut inner.grad {
            Some(g) => g.add_assign(&grad),
            slot @ None => *slot = Some(grad),
        }
    }

    /// Backward with an explicit output gradient.
    pub fn backward_with(&self, seed: Tensor) {
        // Topological order via iterative post-order DFS.
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<usize> = HashSet::new();
        let mut stack: Vec<(Var, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.id());
        while let Some((node, child_idx)) = stack.pop() {
            let next_child = {
                let inner = node.inner.borrow();
                inner.parents.get(child_idx).cloned()
            };
            match next_child {
                Some(child) => {
                    stack.push((node, child_idx + 1));
                    if visited.insert(child.id()) {
                        stack.push((child, 0));
                    }
                }
                None => order.push(node),
            }
        }

        {
            let mut inner = self.inner.borrow_mut();
            assert_eq!(
                inner.value.shape(),
                seed.shape(),
                "backward seed shape mismatch"
            );
            match &mut inner.grad {
                Some(g) => g.add_assign(&seed),
                slot @ None => *slot = Some(seed),
            }
        }

        // Reverse topological order: every node is processed after all its
        // consumers, so its gradient is complete when its backward runs.
        for node in order.iter().rev() {
            let (grad, parents, has_backward) = {
                let inner = node.inner.borrow();
                (
                    inner.grad.clone(),
                    inner.parents.clone(),
                    inner.backward.is_some(),
                )
            };
            let Some(grad) = grad else { continue };
            if !has_backward {
                continue;
            }
            let parent_grads = {
                let inner = node.inner.borrow();
                (inner.backward.as_ref().expect("checked above"))(&grad)
            };
            assert_eq!(
                parent_grads.len(),
                parents.len(),
                "backward returned {} grads for {} parents",
                parent_grads.len(),
                parents.len()
            );
            for (parent, pg) in parents.iter().zip(parent_grads) {
                let mut pi = parent.inner.borrow_mut();
                assert_eq!(
                    pi.value.shape(),
                    pg.shape(),
                    "gradient shape {:?} does not match parent value shape {:?}",
                    pg.shape(),
                    pi.value.shape()
                );
                match &mut pi.grad {
                    Some(g) => g.add_assign(&pg),
                    slot @ None => *slot = Some(pg),
                }
            }
            // Free the intermediate gradient once consumed (leaves keep
            // theirs for the optimizer).
            if has_backward {
                node.inner.borrow_mut().grad = None;
            }
        }
    }
}

impl Drop for VarInner {
    fn drop(&mut self) {
        // Deep tapes (long sequences, many layers) would otherwise drop
        // recursively through the parent chain and overflow the stack.
        // Unlink iteratively: whenever we hold the last reference to a
        // parent, steal its own parents onto the worklist first.
        let mut stack = std::mem::take(&mut self.parents);
        while let Some(var) = stack.pop() {
            if let Ok(cell) = Rc::try_unwrap(var.inner) {
                let mut inner = cell.into_inner();
                stack.append(&mut inner.parents);
            }
        }
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "Var(id={}, value={:?}, requires_grad={})",
            inner.id, inner.value, inner.requires_grad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_has_no_grad_flow() {
        let c = Var::constant(Tensor::scalar(5.0));
        assert!(!c.requires_grad());
        assert!(c.grad().is_none());
    }

    #[test]
    fn simple_chain_backward() {
        // y = (w * x), dy/dw = x
        let w = Var::parameter(Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let x = Var::constant(Tensor::from_vec(vec![4.0, 5.0], &[2]));
        let y = w.mul(&x).sum_all();
        y.backward();
        assert_eq!(w.grad().unwrap().as_slice(), &[4.0, 5.0]);
    }

    #[test]
    fn gradient_accumulates_across_backward_calls() {
        let w = Var::parameter(Tensor::scalar(1.0));
        for _ in 0..3 {
            let y = w.mul_scalar(2.0).sum_all();
            y.backward();
        }
        assert_eq!(w.grad().unwrap().item(), 6.0);
        w.zero_grad();
        assert!(w.grad().is_none());
    }

    #[test]
    fn diamond_graph_accumulates_through_both_paths() {
        // y = w*w + w  →  dy/dw = 2w + 1
        let w = Var::parameter(Tensor::scalar(3.0));
        let y = w.mul(&w).add(&w).sum_all();
        y.backward();
        assert_eq!(w.grad().unwrap().item(), 7.0);
    }

    #[test]
    fn shared_subexpression_counted_once_per_use() {
        // s = w + w; y = s * s = 4w²  →  dy/dw = 8w
        let w = Var::parameter(Tensor::scalar(2.0));
        let s = w.add(&w);
        let y = s.mul(&s).sum_all();
        y.backward();
        assert_eq!(w.grad().unwrap().item(), 16.0);
    }

    #[test]
    fn detach_blocks_gradient() {
        let w = Var::parameter(Tensor::scalar(2.0));
        let y = w.detach().mul(&w).sum_all();
        y.backward();
        // Only the non-detached path contributes: d/dw (c * w) = c = 2.
        assert_eq!(w.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn assign_updates_value_in_place() {
        let w = Var::parameter(Tensor::scalar(1.0));
        w.assign(Tensor::scalar(9.0));
        assert_eq!(w.value().item(), 9.0);
    }

    #[test]
    #[should_panic(expected = "assign shape mismatch")]
    fn assign_rejects_shape_change() {
        Var::parameter(Tensor::zeros(&[2])).assign(Tensor::zeros(&[3]));
    }

    #[test]
    fn no_grad_matches_recorded_values_but_blocks_gradients() {
        let w = Var::parameter(Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let x = Var::constant(Tensor::from_vec(vec![4.0, 5.0], &[2]));
        let recorded = w.mul(&x).sum_all();
        let silent = no_grad(|| w.mul(&x).sum_all());
        assert_eq!(silent.value().item(), recorded.value().item());
        assert!(!is_no_grad(), "flag restored after the closure");
        silent.backward();
        assert!(
            w.grad().is_none(),
            "no_grad results must not route gradients to parameters"
        );
        recorded.backward();
        assert_eq!(w.grad().unwrap().as_slice(), &[4.0, 5.0]);
    }

    #[test]
    fn no_grad_nests_and_restores_on_panic() {
        no_grad(|| {
            assert!(is_no_grad());
            no_grad(|| assert!(is_no_grad()));
            assert!(is_no_grad(), "inner scope must not clear the outer one");
        });
        assert!(!is_no_grad());
        let caught = std::panic::catch_unwind(|| no_grad(|| panic!("boom")));
        assert!(caught.is_err());
        assert!(!is_no_grad(), "flag restored even when the closure panics");
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut v = Var::parameter(Tensor::scalar(1.0));
        let w = v.clone();
        for _ in 0..50_000 {
            v = v.add_scalar(0.0);
        }
        let loss = v.sum_all();
        loss.backward();
        assert_eq!(w.grad().unwrap().item(), 1.0);
    }
}
