//! Loss functions.
//!
//! Classification losses are *fused* primitives (softmax + NLL computed
//! together, logits-space BCE) so they stay numerically stable at extreme
//! logits; the regression losses are compositions of Var ops.

use geotorch_tensor::Tensor;

use crate::Var;

/// Mean squared error between predictions and targets (any matching shape).
pub fn mse_loss(pred: &Var, target: &Var) -> Var {
    assert_eq!(pred.shape(), target.shape(), "mse_loss shape mismatch");
    pred.sub(target).square().mean_all()
}

/// Mean absolute error. Differentiable everywhere except 0, where the
/// subgradient 0 is used.
pub fn mae_loss(pred: &Var, target: &Var) -> Var {
    assert_eq!(pred.shape(), target.shape(), "mae_loss shape mismatch");
    let diff = pred.sub(target).value();
    let n = diff.len() as f32;
    let sign = diff.map(|v| {
        if v > 0.0 {
            1.0 / n
        } else if v < 0.0 {
            -1.0 / n
        } else {
            0.0
        }
    });
    let value = Tensor::scalar(diff.abs().mean());
    let d = pred.sub(target);
    Var::from_op(
        value,
        vec![d],
        Box::new(move |g| vec![sign.mul_scalar(g.item())]),
    )
}

/// Cross-entropy over logits `[B, K]` against class indices (`targets[b] <
/// K`). Fuses log-softmax and negative log-likelihood; the backward pass is
/// the classic `(softmax - onehot) / B`.
///
/// # Panics
/// If shapes/indices are inconsistent.
pub fn cross_entropy_loss(logits: &Var, targets: &[usize]) -> Var {
    let value = logits.value();
    assert_eq!(value.ndim(), 2, "cross_entropy expects [B, K] logits");
    let (b, k) = (value.shape()[0], value.shape()[1]);
    assert_eq!(targets.len(), b, "cross_entropy needs one target per row");
    assert!(
        targets.iter().all(|&t| t < k),
        "cross_entropy target out of range (K = {k})"
    );
    let log_probs = value.log_softmax_lastdim();
    let nll = -targets
        .iter()
        .enumerate()
        .map(|(row, &cls)| log_probs.as_slice()[row * k + cls])
        .sum::<f32>()
        / b as f32;
    let softmax = value.softmax_lastdim();
    let targets = targets.to_vec();
    Var::from_op(
        Tensor::scalar(nll),
        vec![logits.clone()],
        Box::new(move |g| {
            let scale = g.item() / b as f32;
            let mut grad = softmax.clone();
            {
                let data = grad.as_mut_slice();
                for (row, &cls) in targets.iter().enumerate() {
                    data[row * k + cls] -= 1.0;
                }
                for v in data.iter_mut() {
                    *v *= scale;
                }
            }
            vec![grad]
        }),
    )
}

/// Binary cross-entropy over logits (any shape) against targets in `[0, 1]`
/// of the same shape. Uses the overflow-free formulation
/// `max(x, 0) - x·y + ln(1 + e^{-|x|})`.
pub fn bce_with_logits_loss(logits: &Var, targets: &Var) -> Var {
    let x = logits.value();
    let y = targets.value();
    assert_eq!(x.shape(), y.shape(), "bce_with_logits shape mismatch");
    let n = x.len() as f32;
    let total: f32 = x
        .as_slice()
        .iter()
        .zip(y.as_slice())
        .map(|(&xv, &yv)| xv.max(0.0) - xv * yv + (1.0 + (-xv.abs()).exp()).ln())
        .sum();
    let sig = x.sigmoid();
    let y_grad_ref = y.clone();
    Var::from_op(
        Tensor::scalar(total / n),
        vec![logits.clone()],
        Box::new(move |g| {
            let scale = g.item() / n;
            vec![sig.sub(&y_grad_ref).mul_scalar(scale)]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_close;
    use rand::SeedableRng;

    #[test]
    fn mse_known_value() {
        let p = Var::constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let t = Var::constant(Tensor::from_vec(vec![3.0, 2.0], &[2]));
        assert_eq!(mse_loss(&p, &t).value().item(), 2.0);
    }

    #[test]
    fn mae_known_value_and_grad() {
        let p = Var::parameter(Tensor::from_vec(vec![1.0, 5.0], &[2]));
        let t = Var::constant(Tensor::from_vec(vec![3.0, 2.0], &[2]));
        let loss = mae_loss(&p, &t);
        assert_eq!(loss.value().item(), 2.5);
        loss.backward();
        assert_eq!(p.grad().unwrap().as_slice(), &[-0.5, 0.5]);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Var::constant(Tensor::zeros(&[2, 4]));
        let loss = cross_entropy_loss(&logits, &[0, 3]);
        assert!((loss.value().item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut t = Tensor::zeros(&[1, 3]);
        t.set(&[0, 1], 20.0);
        let loss = cross_entropy_loss(&Var::constant(t), &[1]);
        assert!(loss.value().item() < 1e-4);
    }

    #[test]
    fn cross_entropy_gradient_checks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let logits = Var::parameter(Tensor::rand_uniform(&[3, 4], -2.0, 2.0, &mut rng));
        assert_gradients_close(
            &[logits],
            |p| cross_entropy_loss(&p[0], &[1, 0, 3]),
            1e-2,
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn cross_entropy_rejects_bad_target() {
        cross_entropy_loss(&Var::constant(Tensor::zeros(&[1, 2])), &[2]);
    }

    #[test]
    fn bce_matches_reference() {
        // x = 0 → loss = ln 2 regardless of target.
        let x = Var::constant(Tensor::zeros(&[4]));
        let y = Var::constant(Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[4]));
        assert!((bce_with_logits_loss(&x, &y).value().item() - (2.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn bce_is_stable_at_extreme_logits() {
        let x = Var::constant(Tensor::from_vec(vec![1000.0, -1000.0], &[2]));
        let y = Var::constant(Tensor::from_vec(vec![1.0, 0.0], &[2]));
        let loss = bce_with_logits_loss(&x, &y).value().item();
        assert!(loss.is_finite() && loss < 1e-6);
    }

    #[test]
    fn bce_gradient_checks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Var::parameter(Tensor::rand_uniform(&[6], -2.0, 2.0, &mut rng));
        let y = Tensor::rand_uniform(&[6], 0.0, 1.0, &mut rng);
        assert_gradients_close(
            &[x],
            |p| bce_with_logits_loss(&p[0], &Var::constant(y.clone())),
            1e-2,
            1e-2,
        );
    }
}
