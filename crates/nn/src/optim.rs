//! Optimizers: SGD (with momentum) and Adam.

use geotorch_tensor::Tensor;

use crate::Var;

/// Common optimizer interface.
pub trait Optimizer {
    /// Apply one update using the gradients currently stored on the
    /// parameters. Parameters with no gradient are skipped.
    fn step(&mut self);

    /// Clear gradients on all managed parameters.
    fn zero_grad(&self);

    /// The parameters this optimizer updates.
    fn parameters(&self) -> &[Var];

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Change the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// `momentum = 0` gives plain SGD.
    pub fn new(params: Vec<Var>, lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        let n = params.len();
        Sgd {
            params,
            lr,
            momentum,
            velocity: vec![None; n],
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let _t = geotorch_telemetry::scope!("nn.optim.step");
        let (lr, momentum) = (self.lr, self.momentum);
        for (param, vel) in self.params.iter().zip(&mut self.velocity) {
            let Some(grad) = param.grad() else { continue };
            // In-place update chain: the velocity buffer is owned by the
            // optimizer (uniquely held) and the parameter buffer is
            // unique once the loss graph has been dropped, so steady
            // state runs without allocating. Elementwise the arithmetic
            // matches the out-of-place formulation exactly:
            // v ← momentum·v + g;  p ← p − lr·v.
            if momentum > 0.0 {
                let v = vel.get_or_insert_with(|| Tensor::zeros(grad.shape()));
                v.scale_(momentum);
                v.add_(&grad);
                param.update_value(|p| p.add_scaled_(v, -lr));
            } else {
                param.update_value(|p| p.add_scaled_(&grad, -lr));
            }
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction — the optimizer used for
/// every experiment in the paper (§V-C).
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with the standard defaults β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        Adam::with_betas(params, lr, 0.9, 0.999)
    }

    /// Adam with explicit β coefficients.
    pub fn with_betas(params: Vec<Var>, lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let n = params.len();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: vec![None; n],
            v: vec![None; n],
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        let _t = geotorch_telemetry::scope!("nn.optim.step");
        self.t += 1;
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let inv_bc1 = 1.0 / (1.0 - beta1.powi(self.t as i32));
        let inv_bc2 = 1.0 / (1.0 - beta2.powi(self.t as i32));
        for ((param, m_slot), v_slot) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            let Some(grad) = param.grad() else { continue };
            let gs = grad.as_slice();
            // Fused in-place moment and parameter updates: the moment
            // buffers belong to the optimizer (always unique) and the
            // parameter buffer is unique once the loss graph is gone.
            // Elementwise arithmetic is unchanged from the out-of-place
            // version: m ← β₁m + (1−β₁)g; v ← β₂v + (1−β₂)g²;
            // p ← p − lr·(m/bc₁)/(√(v/bc₂) + ε).
            let m = m_slot.get_or_insert_with(|| Tensor::zeros(grad.shape()));
            for (m_i, &g) in m.as_mut_slice().iter_mut().zip(gs) {
                *m_i = beta1 * *m_i + (1.0 - beta1) * g;
            }
            let v = v_slot.get_or_insert_with(|| Tensor::zeros(grad.shape()));
            for (v_i, &g) in v.as_mut_slice().iter_mut().zip(gs) {
                *v_i = beta2 * *v_i + (g * g) * (1.0 - beta2);
            }
            let (ms, vs) = (m.as_slice(), v.as_slice());
            param.update_value(|p| {
                for ((p_i, &m_i), &v_i) in p.as_mut_slice().iter_mut().zip(ms).zip(vs) {
                    let m_hat = m_i * inv_bc1;
                    let v_hat = v_i * inv_bc2;
                    *p_i -= (m_hat / (v_hat.sqrt() + eps)) * lr;
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;

    fn quadratic_param() -> Var {
        Var::parameter(Tensor::from_vec(vec![5.0, -3.0], &[2]))
    }

    fn converges(opt: &mut dyn Optimizer, param: &Var, steps: usize) -> f32 {
        for _ in 0..steps {
            opt.zero_grad();
            let loss = param.square().sum_all();
            loss.backward();
            opt.step();
        }
        param.value().abs().max()
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let p = quadratic_param();
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        assert!(converges(&mut opt, &p, 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_minimises_quadratic() {
        let p = quadratic_param();
        let mut opt = Sgd::new(vec![p.clone()], 0.05, 0.9);
        assert!(converges(&mut opt, &p, 200) < 1e-2);
    }

    #[test]
    fn adam_minimises_quadratic() {
        let p = quadratic_param();
        let mut opt = Adam::new(vec![p.clone()], 0.3);
        assert!(converges(&mut opt, &p, 200) < 1e-2);
    }

    #[test]
    fn adam_fits_linear_regression() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        // y = 2x + 1
        let xs = Tensor::rand_uniform(&[64, 1], -1.0, 1.0, &mut rng);
        let ys = xs.mul_scalar(2.0).add_scalar(1.0);
        let w = Var::parameter(Tensor::zeros(&[1, 1]));
        let b = Var::parameter(Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![w.clone(), b.clone()], 0.05);
        for _ in 0..400 {
            opt.zero_grad();
            let pred = Var::constant(xs.clone()).matmul(&w).add(&b);
            let loss = mse_loss(&pred, &Var::constant(ys.clone()));
            loss.backward();
            opt.step();
        }
        assert!((w.value().item() - 2.0).abs() < 0.05);
        assert!((b.value().item() - 1.0).abs() < 0.05);
    }

    #[test]
    fn fused_steps_match_reference_formulas() {
        // SGD with momentum against the textbook out-of-place update.
        let p = Var::parameter(Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]));
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.9);
        let mut p_ref = p.value();
        let mut v_ref = Tensor::zeros(&[3]);
        for _ in 0..3 {
            opt.zero_grad();
            p.square().sum_all().backward();
            let grad = p.grad().unwrap();
            v_ref = v_ref.mul_scalar(0.9).add(&grad);
            p_ref = p_ref.sub(&v_ref.mul_scalar(0.1));
            opt.step();
            assert_eq!(p.value(), p_ref, "fused SGD must be bit-identical");
        }

        // Adam against the textbook update with bias correction.
        let q = Var::parameter(Tensor::from_vec(vec![0.3, -1.1], &[2]));
        let mut adam = Adam::new(vec![q.clone()], 0.05);
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let mut m = Tensor::zeros(&[2]);
        let mut v = Tensor::zeros(&[2]);
        let mut q_ref = q.value();
        for t in 1..=3 {
            adam.zero_grad();
            q.square().sum_all().backward();
            let g = q.grad().unwrap();
            m = m.mul_scalar(b1).add(&g.mul_scalar(1.0 - b1));
            v = v.mul_scalar(b2).add(&g.square().mul_scalar(1.0 - b2));
            let m_hat = m.mul_scalar(1.0 / (1.0 - b1.powi(t)));
            let v_hat = v.mul_scalar(1.0 / (1.0 - b2.powi(t)));
            q_ref = q_ref.sub(&m_hat.div(&v_hat.sqrt().add_scalar(eps)).mul_scalar(0.05));
            adam.step();
            assert_eq!(q.value(), q_ref, "fused Adam must be bit-identical");
        }
    }

    #[test]
    fn step_skips_parameters_without_grad() {
        let p = Var::parameter(Tensor::scalar(1.0));
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        opt.step(); // no backward ran — value must be untouched
        assert_eq!(p.value().item(), 1.0);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(vec![], 0.1, 0.0);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        Sgd::new(vec![], 0.0, 0.0);
    }
}
