//! Optimizers: SGD (with momentum) and Adam.

use geotorch_tensor::Tensor;

use crate::Var;

/// Common optimizer interface.
pub trait Optimizer {
    /// Apply one update using the gradients currently stored on the
    /// parameters. Parameters with no gradient are skipped.
    fn step(&mut self);

    /// Clear gradients on all managed parameters.
    fn zero_grad(&self);

    /// The parameters this optimizer updates.
    fn parameters(&self) -> &[Var];

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Change the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// `momentum = 0` gives plain SGD.
    pub fn new(params: Vec<Var>, lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        let n = params.len();
        Sgd {
            params,
            lr,
            momentum,
            velocity: vec![None; n],
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let _t = geotorch_telemetry::scope!("nn.optim.step");
        for (param, vel) in self.params.iter().zip(&mut self.velocity) {
            let Some(grad) = param.grad() else { continue };
            let update = if self.momentum > 0.0 {
                let v = match vel.take() {
                    Some(v) => v.mul_scalar(self.momentum).add(&grad),
                    None => grad,
                };
                *vel = Some(v.clone());
                v
            } else {
                grad
            };
            param.assign(param.value().sub(&update.mul_scalar(self.lr)));
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction — the optimizer used for
/// every experiment in the paper (§V-C).
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with the standard defaults β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        Adam::with_betas(params, lr, 0.9, 0.999)
    }

    /// Adam with explicit β coefficients.
    pub fn with_betas(params: Vec<Var>, lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let n = params.len();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: vec![None; n],
            v: vec![None; n],
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        let _t = geotorch_telemetry::scope!("nn.optim.step");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((param, m_slot), v_slot) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            let Some(grad) = param.grad() else { continue };
            let m_prev = m_slot.take().unwrap_or_else(|| Tensor::zeros(grad.shape()));
            let v_prev = v_slot.take().unwrap_or_else(|| Tensor::zeros(grad.shape()));
            let m = m_prev
                .mul_scalar(self.beta1)
                .add(&grad.mul_scalar(1.0 - self.beta1));
            let v = v_prev
                .mul_scalar(self.beta2)
                .add(&grad.square().mul_scalar(1.0 - self.beta2));
            let m_hat = m.mul_scalar(1.0 / bc1);
            let v_hat = v.mul_scalar(1.0 / bc2);
            let update = m_hat.div(&v_hat.sqrt().add_scalar(self.eps));
            param.assign(param.value().sub(&update.mul_scalar(self.lr)));
            *m_slot = Some(m);
            *v_slot = Some(v);
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;

    fn quadratic_param() -> Var {
        Var::parameter(Tensor::from_vec(vec![5.0, -3.0], &[2]))
    }

    fn converges(opt: &mut dyn Optimizer, param: &Var, steps: usize) -> f32 {
        for _ in 0..steps {
            opt.zero_grad();
            let loss = param.square().sum_all();
            loss.backward();
            opt.step();
        }
        param.value().abs().max()
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let p = quadratic_param();
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        assert!(converges(&mut opt, &p, 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_minimises_quadratic() {
        let p = quadratic_param();
        let mut opt = Sgd::new(vec![p.clone()], 0.05, 0.9);
        assert!(converges(&mut opt, &p, 200) < 1e-2);
    }

    #[test]
    fn adam_minimises_quadratic() {
        let p = quadratic_param();
        let mut opt = Adam::new(vec![p.clone()], 0.3);
        assert!(converges(&mut opt, &p, 200) < 1e-2);
    }

    #[test]
    fn adam_fits_linear_regression() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        // y = 2x + 1
        let xs = Tensor::rand_uniform(&[64, 1], -1.0, 1.0, &mut rng);
        let ys = xs.mul_scalar(2.0).add_scalar(1.0);
        let w = Var::parameter(Tensor::zeros(&[1, 1]));
        let b = Var::parameter(Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![w.clone(), b.clone()], 0.05);
        for _ in 0..400 {
            opt.zero_grad();
            let pred = Var::constant(xs.clone()).matmul(&w).add(&b);
            let loss = mse_loss(&pred, &Var::constant(ys.clone()));
            loss.backward();
            opt.step();
        }
        assert!((w.value().item() - 2.0).abs() < 0.05);
        assert!((b.value().item() - 1.0).abs() < 0.05);
    }

    #[test]
    fn step_skips_parameters_without_grad() {
        let p = Var::parameter(Tensor::scalar(1.0));
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        opt.step(); // no backward ran — value must be untouched
        assert_eq!(p.value().item(), 1.0);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(vec![], 0.1, 0.0);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        Sgd::new(vec![], 0.0, 0.0);
    }
}
