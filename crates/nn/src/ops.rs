//! Differentiable operations on [`Var`].
//!
//! Each op computes its value eagerly with `geotorch-tensor` kernels and
//! records a backward closure that maps the output gradient to gradients
//! for each parent. Broadcast ops use `reduce_to_shape` (the adjoint of
//! broadcasting) so gradients always match parameter shapes.

use geotorch_tensor::ops::broadcast::{reduce_to_shape, zip_broadcast};
use geotorch_tensor::ops::conv::{
    col2im, conv2d, conv_transpose2d, im2col, upsample_nearest2d, upsample_nearest2d_backward,
};
use geotorch_tensor::ops::pool::{
    avgpool2d, avgpool2d_backward, maxpool2d, maxpool2d_backward,
};
use geotorch_tensor::{parallel_map, Tensor};

use crate::Var;

impl Var {
    // ------------------------------------------------------ binary (broadcast)

    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &Var) -> Var {
        let (sa, sb) = (self.shape(), other.shape());
        let value = self.value().add(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![reduce_to_shape(g, &sa), reduce_to_shape(g, &sb)]),
        )
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Var) -> Var {
        let (sa, sb) = (self.shape(), other.shape());
        let value = self.value().sub(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                vec![reduce_to_shape(g, &sa), reduce_to_shape(&g.neg(), &sb)]
            }),
        )
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &Var) -> Var {
        let (sa, sb) = (self.shape(), other.shape());
        let (va, vb) = (self.value(), other.value());
        let value = va.mul(&vb);
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                vec![
                    reduce_to_shape(&zip_broadcast(g, &vb, |x, y| x * y), &sa),
                    reduce_to_shape(&zip_broadcast(g, &va, |x, y| x * y), &sb),
                ]
            }),
        )
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Var) -> Var {
        let (sa, sb) = (self.shape(), other.shape());
        let (va, vb) = (self.value(), other.value());
        let value = va.div(&vb);
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                let ga = zip_broadcast(g, &vb, |x, y| x / y);
                let gb_full = {
                    let num = zip_broadcast(g, &va, |x, y| x * y);
                    let den = vb.square();
                    zip_broadcast(&num, &den, |x, y| -x / y)
                };
                vec![reduce_to_shape(&ga, &sa), reduce_to_shape(&gb_full, &sb)]
            }),
        )
    }

    // --------------------------------------------------------------- unary

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        Var::from_op(
            self.value().add_scalar(s),
            vec![self.clone()],
            Box::new(|g| vec![g.clone()]),
        )
    }

    /// Multiply every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Var {
        Var::from_op(
            self.value().mul_scalar(s),
            vec![self.clone()],
            Box::new(move |g| vec![g.mul_scalar(s)]),
        )
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.mul_scalar(-1.0)
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let v = self.value();
        Var::from_op(
            v.square(),
            vec![self.clone()],
            Box::new(move |g| vec![zip_broadcast(g, &v, |x, y| 2.0 * x * y)]),
        )
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let out = self.value().sqrt();
        let out_c = out.clone();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| vec![zip_broadcast(g, &out_c, |x, y| 0.5 * x / y)]),
        )
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Var {
        let out = self.value().exp();
        let out_c = out.clone();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| vec![zip_broadcast(g, &out_c, |x, y| x * y)]),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let v = self.value();
        Var::from_op(
            v.relu(),
            vec![self.clone()],
            Box::new(move |g| {
                vec![zip_broadcast(g, &v, |x, y| if y > 0.0 { x } else { 0.0 })]
            }),
        )
    }

    /// Leaky rectified linear unit: `x` for positive inputs, `alpha * x`
    /// otherwise. Keeps gradients alive where a plain ReLU would die.
    pub fn leaky_relu(&self, alpha: f32) -> Var {
        let v = self.value();
        Var::from_op(
            v.map(move |x| if x > 0.0 { x } else { alpha * x }),
            vec![self.clone()],
            Box::new(move |g| {
                vec![zip_broadcast(g, &v, move |x, y| {
                    if y > 0.0 {
                        x
                    } else {
                        alpha * x
                    }
                })]
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.value().sigmoid();
        let out_c = out.clone();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| vec![zip_broadcast(g, &out_c, |x, y| x * y * (1.0 - y))]),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let out = self.value().tanh();
        let out_c = out.clone();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| vec![zip_broadcast(g, &out_c, |x, y| x * (1.0 - y * y))]),
        )
    }

    // ---------------------------------------------------------- reductions

    /// Sum of all elements, as a scalar Var.
    pub fn sum_all(&self) -> Var {
        let shape = self.shape();
        Var::from_op(
            Tensor::scalar(self.value().sum()),
            vec![self.clone()],
            Box::new(move |g| vec![Tensor::full(&shape, g.item())]),
        )
    }

    /// Mean of all elements, as a scalar Var.
    pub fn mean_all(&self) -> Var {
        let n = self.value().len() as f32;
        self.sum_all().mul_scalar(1.0 / n)
    }

    /// Sum along `axis`, keeping it with extent 1 (grad broadcasts back).
    pub fn sum_axis_keepdim(&self, axis: usize) -> Var {
        let shape = self.shape();
        let value = self.value().sum_axis_keepdim(axis);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                vec![zip_broadcast(g, &Tensor::zeros(&shape), |x, _| x)]
            }),
        )
    }

    /// Mean along `axis`, keeping it with extent 1.
    pub fn mean_axis_keepdim(&self, axis: usize) -> Var {
        let n = self.shape()[axis] as f32;
        self.sum_axis_keepdim(axis).mul_scalar(1.0 / n)
    }

    // ---------------------------------------------------------- shape ops

    /// Reshape (element count preserved).
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let src_shape = self.shape();
        let value = self.value().reshape(shape);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| vec![g.reshape(&src_shape)]),
        )
    }

    /// Flatten all axes except the leading (batch) axis: `[B, ...] → [B, N]`.
    pub fn flatten_batch(&self) -> Var {
        let shape = self.shape();
        assert!(!shape.is_empty(), "flatten_batch needs at least one axis");
        let b = shape[0];
        let rest: usize = shape[1..].iter().product();
        self.reshape(&[b, rest])
    }

    /// Permute axes; gradient applies the inverse permutation.
    pub fn permute(&self, perm: &[usize]) -> Var {
        let perm_owned = perm.to_vec();
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        let value = self.value().permute(&perm_owned);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| vec![g.permute(&inverse)]),
        )
    }

    /// Slice `[start, end)` along `axis`; gradient scatters back into place.
    pub fn narrow(&self, axis: usize, start: usize, end: usize) -> Var {
        let src_shape = self.shape();
        let value = self.value().narrow(axis, start, end);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| vec![embed_narrow(g, &src_shape, axis, start)]),
        )
    }

    /// Concatenate along `axis`; gradients split back to each input.
    pub fn concat(vars: &[&Var], axis: usize) -> Var {
        assert!(!vars.is_empty(), "Var::concat of zero inputs");
        let values: Vec<Tensor> = vars.iter().map(|v| v.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let value = Tensor::concat(&refs, axis);
        let extents: Vec<usize> = values.iter().map(|v| v.shape()[axis]).collect();
        let parents: Vec<Var> = vars.iter().map(|v| (*v).clone()).collect();
        Var::from_op(
            value,
            parents,
            Box::new(move |g| {
                let mut grads = Vec::with_capacity(extents.len());
                let mut offset = 0;
                for &e in &extents {
                    grads.push(g.narrow(axis, offset, offset + e));
                    offset += e;
                }
                grads
            }),
        )
    }

    // ------------------------------------------------------------- linalg

    /// 2-D matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        let (va, vb) = (self.value(), other.value());
        let value = va.matmul(&vb);
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                vec![g.matmul(&vb.transpose()), va.transpose().matmul(g)]
            }),
        )
    }

    // ----------------------------------------------------------- conv/pool

    /// 2-D convolution (`input = self [B,C,H,W]`, `weight [O,C,kh,kw]`).
    pub fn conv2d(&self, weight: &Var, bias: Option<&Var>, stride: usize, pad: usize) -> Var {
        let x = self.value();
        let w = weight.value();
        let value = conv2d(&x, &w, bias.map(|b| b.value()).as_ref(), stride, pad);
        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(b) = bias {
            parents.push(b.clone());
        }
        let has_bias = bias.is_some();
        Var::from_op(
            value,
            parents,
            Box::new(move |g| {
                let _t = geotorch_telemetry::scope!("nn.conv2d_bwd");
                let (bsz, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
                let (o, kh, kw) = (w.shape()[0], w.shape()[2], w.shape()[3]);
                let (oh, ow) = (g.shape()[2], g.shape()[3]);
                let w_mat = w.reshape(&[o, c * kh * kw]);
                let w_mat_t = w_mat.transpose();
                // Per-sample gradients are independent, so fan them out over
                // the device worker pool; summing the weight-gradient parts
                // in index order keeps the result identical to a serial loop.
                let parts = parallel_map(bsz, |bi| {
                    let g_mat = g.index_axis(0, bi).reshape(&[o, oh * ow]);
                    // grad wrt input: scatter W^T g back through im2col.
                    let col_g = w_mat_t.matmul(&g_mat);
                    let gx_part = col2im(&col_g, c, h, wd, kh, kw, stride, pad);
                    // grad wrt weight: g col^T accumulated over the batch.
                    let col = im2col(&x.index_axis(0, bi), kh, kw, stride, pad);
                    (gx_part, g_mat.matmul(&col.transpose()))
                });
                let mut gw = Tensor::zeros(&[o, c * kh * kw]);
                for (_, gw_part) in &parts {
                    gw.add_assign(gw_part);
                }
                let gx_refs: Vec<&Tensor> = parts.iter().map(|(gx, _)| gx).collect();
                let gx = Tensor::stack(&gx_refs);
                let mut grads = vec![gx, gw.reshape(w.shape())];
                if has_bias {
                    // Sum over batch and spatial axes.
                    let gb = g
                        .reshape(&[bsz, o, oh * ow])
                        .sum_axis(2)
                        .sum_axis(0);
                    grads.push(gb);
                }
                grads
            }),
        )
    }

    /// Transposed 2-D convolution (`weight [C,O,kh,kw]`).
    pub fn conv_transpose2d(
        &self,
        weight: &Var,
        bias: Option<&Var>,
        stride: usize,
        pad: usize,
    ) -> Var {
        let x = self.value();
        let w = weight.value();
        let value = conv_transpose2d(&x, &w, bias.map(|b| b.value()).as_ref(), stride, pad);
        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(b) = bias {
            parents.push(b.clone());
        }
        let has_bias = bias.is_some();
        Var::from_op(
            value,
            parents,
            Box::new(move |g| {
                let _t = geotorch_telemetry::scope!("nn.conv_transpose2d_bwd");
                let (bsz, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
                let (o, kh, kw) = (w.shape()[1], w.shape()[2], w.shape()[3]);
                let (gh, gw_sp) = (g.shape()[2], g.shape()[3]);
                let w_mat = w.reshape(&[c, o * kh * kw]);
                // Per-sample gradients fan out over the worker pool, as in
                // `conv2d`'s backward pass.
                let parts = parallel_map(bsz, |bi| {
                    // Forward was: col = w_mat^T x_mat ; y = col2im(col).
                    // Adjoint: grad_col = im2col(grad_y); grad_x = w_mat grad_col;
                    // grad_w = x_mat grad_col^T.
                    let g_img = g.index_axis(0, bi);
                    let grad_col = im2col(&g_img, kh, kw, stride, pad);
                    let x_mat = x.index_axis(0, bi).reshape(&[c, h * wd]);
                    (
                        w_mat.matmul(&grad_col).reshape(&[c, h, wd]),
                        x_mat.matmul(&grad_col.transpose()),
                    )
                });
                let mut gw_acc = Tensor::zeros(&[c, o * kh * kw]);
                for (_, gw_part) in &parts {
                    gw_acc.add_assign(gw_part);
                }
                let gx_refs: Vec<&Tensor> = parts.iter().map(|(gx, _)| gx).collect();
                let gx = Tensor::stack(&gx_refs);
                let mut grads = vec![gx, gw_acc.reshape(w.shape())];
                if has_bias {
                    let gb = g
                        .reshape(&[bsz, o, gh * gw_sp])
                        .sum_axis(2)
                        .sum_axis(0);
                    grads.push(gb);
                }
                grads
            }),
        )
    }

    /// 2-D max pooling; gradient routes through the argmax positions.
    pub fn maxpool2d(&self, kernel: usize, stride: usize) -> Var {
        let shape = self.shape();
        let (value, argmax) = maxpool2d(&self.value(), kernel, stride);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| vec![maxpool2d_backward(g, &argmax, &shape)]),
        )
    }

    /// 2-D average pooling.
    pub fn avgpool2d(&self, kernel: usize, stride: usize) -> Var {
        let shape = self.shape();
        let value = avgpool2d(&self.value(), kernel, stride);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| vec![avgpool2d_backward(g, kernel, stride, &shape)]),
        )
    }

    /// Nearest-neighbour upsampling by an integer factor.
    pub fn upsample_nearest2d(&self, factor: usize) -> Var {
        let value = upsample_nearest2d(&self.value(), factor);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| vec![upsample_nearest2d_backward(g, factor)]),
        )
    }
}

/// Place `grad` (the gradient of a narrow) back into a zero tensor of the
/// parent's shape at `start` along `axis`.
fn embed_narrow(grad: &Tensor, parent_shape: &[usize], axis: usize, start: usize) -> Tensor {
    let outer: usize = parent_shape[..axis].iter().product();
    let inner: usize = parent_shape[axis + 1..].iter().product();
    let n = parent_shape[axis];
    let keep = grad.shape()[axis];
    let mut out = vec![0.0f32; geotorch_tensor::numel(parent_shape)];
    let src = grad.as_slice();
    for o in 0..outer {
        let dst_base = (o * n + start) * inner;
        let src_base = o * keep * inner;
        out[dst_base..dst_base + keep * inner]
            .copy_from_slice(&src[src_base..src_base + keep * inner]);
    }
    Tensor::from_vec(out, parent_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(data: Vec<f32>, shape: &[usize]) -> Var {
        Var::parameter(Tensor::from_vec(data, shape))
    }

    #[test]
    fn add_broadcast_bias_grad() {
        // y = x + b with b [3] broadcast over [2,3]: db = column sums of g.
        let x = param(vec![1.0; 6], &[2, 3]);
        let b = param(vec![0.0, 0.0, 0.0], &[3]);
        let y = x.add(&b).sum_all();
        y.backward();
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0, 2.0, 2.0]);
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0; 6]);
    }

    #[test]
    fn div_gradients() {
        let a = param(vec![6.0], &[1]);
        let b = param(vec![2.0], &[1]);
        let y = a.div(&b).sum_all();
        y.backward();
        assert_eq!(a.grad().unwrap().item(), 0.5);
        assert_eq!(b.grad().unwrap().item(), -1.5);
    }

    #[test]
    fn matmul_gradients() {
        let a = param(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = param(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let y = a.matmul(&b).sum_all();
        y.backward();
        // dL/da = 1·bᵀ = ones×I = ones; dL/db = aᵀ·1.
        assert_eq!(a.grad().unwrap().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn leaky_relu_values_and_grad() {
        let x = param(vec![-2.0, 3.0], &[2]);
        let y = x.leaky_relu(0.1);
        assert_eq!(y.value().as_slice(), &[-0.2, 3.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[0.1, 1.0]);
    }

    #[test]
    fn relu_blocks_negative_grad() {
        let x = param(vec![-1.0, 2.0], &[2]);
        let y = x.relu().sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn narrow_embeds_gradient() {
        let x = param(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let y = x.narrow(0, 1, 3).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_splits_gradient() {
        let a = param(vec![1.0, 2.0], &[2]);
        let b = param(vec![3.0], &[1]);
        let y = Var::concat(&[&a, &b], 0).mul_scalar(2.0).sum_all();
        y.backward();
        assert_eq!(a.grad().unwrap().as_slice(), &[2.0, 2.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn permute_grad_round_trips() {
        let x = param((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let y = x.permute(&[1, 0]).mul_scalar(3.0).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[3.0; 6]);
    }

    #[test]
    fn mean_axis_keepdim_grad() {
        let x = param(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = x.mean_axis_keepdim(1).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn sum_axis_keepdim_shapes() {
        let x = param(vec![1.0; 12], &[2, 2, 3]);
        let s = x.sum_axis_keepdim(1);
        assert_eq!(s.shape(), vec![2, 1, 3]);
        s.sum_all().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0; 12]);
    }

    #[test]
    fn maxpool_grad_routes_to_max() {
        let x = param(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 2, 2]);
        let y = x.maxpool2d(2, 2).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn flatten_batch_shape() {
        let x = param(vec![0.0; 24], &[2, 3, 4]);
        assert_eq!(x.flatten_batch().shape(), vec![2, 12]);
    }
}
