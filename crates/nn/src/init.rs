//! Weight initialisation schemes (seeded, deterministic).

use rand::Rng;

use geotorch_tensor::Tensor;

/// Kaiming/He uniform initialisation for layers followed by ReLU:
/// `U(-b, b)` with `b = sqrt(6 / fan_in)`.
pub fn kaiming_uniform<R: Rng>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Xavier/Glorot uniform initialisation for tanh/sigmoid layers:
/// `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan sum must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Fan-in of a conv weight `[O, C, kh, kw]` or linear weight `[out, in]`.
pub fn fan_in_of(shape: &[usize]) -> usize {
    match shape.len() {
        2 => shape[1],
        4 => shape[1] * shape[2] * shape[3],
        _ => panic!("fan_in_of expects a 2-D or 4-D weight, got {:?}", shape),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_within_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let t = kaiming_uniform(&[64, 32], 32, &mut rng);
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= bound));
        // Should actually fill the range, not collapse near zero.
        assert!(t.max() > bound * 0.5);
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let t = xavier_uniform(&[16, 8], 8, 16, &mut rng);
        let bound = (6.0f32 / 24.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn fan_in_shapes() {
        assert_eq!(fan_in_of(&[10, 20]), 20);
        assert_eq!(fan_in_of(&[8, 3, 5, 5]), 75);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = kaiming_uniform(&[4, 4], 4, &mut rand::rngs::StdRng::seed_from_u64(9));
        let b = kaiming_uniform(&[4, 4], 4, &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
