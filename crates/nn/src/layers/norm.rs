//! Batch normalisation.

use std::cell::Cell;

use geotorch_tensor::Tensor;

use crate::{Layer, Module, Var};

/// 2-D batch normalisation over `[B, C, H, W]` inputs.
///
/// In training mode the layer normalises with batch statistics (computed
/// through the autograd tape, so gradients flow through the normalisation)
/// and updates exponential running statistics; in eval mode it uses the
/// stored running statistics as constants.
///
/// The running statistics are kept as *non-trainable* [`Var`]s and
/// reported by [`Module::parameters`]: optimizers skip them (they never
/// receive gradients) but `state_dict`/`load_state_dict` round-trip them,
/// so checkpointing and best-weights restoration stay consistent — the
/// same role `buffers` play in a PyTorch state dict.
pub struct BatchNorm2d {
    gamma: Var,
    beta: Var,
    running_mean: Var,
    running_var: Var,
    training: Cell<bool>,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// New layer for `channels` feature maps with default momentum 0.1 and
    /// eps 1e-5 (PyTorch defaults).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Var::parameter(Tensor::ones(&[channels])),
            beta: Var::parameter(Tensor::zeros(&[channels])),
            running_mean: Var::constant(Tensor::zeros(&[channels])),
            running_var: Var::constant(Tensor::ones(&[channels])),
            training: Cell::new(true),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.shape()[0]
    }

    /// Current running mean (for inspection and checkpointing).
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.value()
    }

    /// Current running variance.
    pub fn running_var(&self) -> Tensor {
        self.running_var.value()
    }

    /// Overwrite running statistics (checkpoint restore).
    pub fn set_running_stats(&self, mean: Tensor, var: Tensor) {
        assert_eq!(mean.shape(), &[self.channels()], "running mean shape");
        assert_eq!(var.shape(), &[self.channels()], "running var shape");
        self.running_mean.assign(mean);
        self.running_var.assign(var);
    }
}

impl Module for BatchNorm2d {
    fn parameters(&self) -> Vec<Var> {
        vec![
            self.gamma.clone(),
            self.beta.clone(),
            self.running_mean.clone(),
            self.running_var.clone(),
        ]
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

impl Layer for BatchNorm2d {
    fn forward(&self, input: &Var) -> Var {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "BatchNorm2d expects [B,C,H,W]");
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.channels(), "BatchNorm2d channel mismatch");
        // [B,C,H,W] → [C, B*H*W] so per-channel stats are row stats.
        let xt = input.permute(&[1, 0, 2, 3]).reshape(&[c, b * h * w]);
        let normalised = if self.training.get() {
            let mean = xt.mean_axis_keepdim(1); // [C,1]
            let centered = xt.sub(&mean);
            let var = centered.square().mean_axis_keepdim(1); // [C,1]
            // Update running stats outside the tape.
            {
                let batch_mean = mean.value().reshape(&[c]);
                let batch_var = var.value().reshape(&[c]);
                let m = self.momentum;
                self.running_mean.assign(
                    self.running_mean
                        .value()
                        .mul_scalar(1.0 - m)
                        .add(&batch_mean.mul_scalar(m)),
                );
                self.running_var.assign(
                    self.running_var
                        .value()
                        .mul_scalar(1.0 - m)
                        .add(&batch_var.mul_scalar(m)),
                );
            }
            centered.div(&var.add_scalar(self.eps).sqrt())
        } else {
            let mean = Var::constant(self.running_mean.value().reshape(&[c, 1]));
            let var = Var::constant(self.running_var.value().reshape(&[c, 1]));
            xt.sub(&mean).div(&var.add_scalar(self.eps).sqrt())
        };
        let scaled = normalised
            .mul(&self.gamma.reshape(&[c, 1]))
            .add(&self.beta.reshape(&[c, 1]));
        scaled.reshape(&[c, b, h, w]).permute(&[1, 0, 2, 3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_close;
    use rand::SeedableRng;

    #[test]
    fn training_output_is_normalised() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let bn = BatchNorm2d::new(3);
        let x = Var::constant(Tensor::rand_uniform(&[4, 3, 5, 5], 10.0, 20.0, &mut rng));
        let y = bn.forward(&x).value();
        // Per channel: mean ≈ 0, var ≈ 1.
        for ch in 0..3 {
            let channel = y.narrow(1, ch, ch + 1);
            assert!(channel.mean().abs() < 1e-4, "channel {ch} mean {}", channel.mean());
            assert!((channel.variance() - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn running_stats_track_batches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let bn = BatchNorm2d::new(1);
        for _ in 0..50 {
            let x = Var::constant(Tensor::rand_uniform(&[8, 1, 4, 4], 4.0, 6.0, &mut rng));
            bn.forward(&x);
        }
        let rm = bn.running_mean().item();
        assert!((rm - 5.0).abs() < 0.2, "running mean {rm} should approach 5");
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let bn = BatchNorm2d::new(1);
        bn.set_running_stats(Tensor::from_vec(vec![2.0], &[1]), Tensor::from_vec(vec![4.0], &[1]));
        bn.set_training(false);
        let x = Var::constant(Tensor::full(&[1, 1, 2, 2], 4.0));
        let y = bn.forward(&x).value();
        // (4 - 2) / sqrt(4 + eps) ≈ 1.
        assert!(y.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-3));
    }

    #[test]
    fn eval_output_is_deterministic_and_stats_frozen() {
        let bn = BatchNorm2d::new(2);
        bn.set_training(false);
        let before = bn.running_mean();
        let x = Var::constant(Tensor::full(&[2, 2, 3, 3], 7.0));
        bn.forward(&x);
        assert_eq!(bn.running_mean(), before);
    }

    #[test]
    fn state_dict_round_trips_running_stats() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bn = BatchNorm2d::new(2);
        // Drift the running stats.
        for _ in 0..10 {
            let x = Var::constant(Tensor::rand_uniform(&[4, 2, 3, 3], 5.0, 9.0, &mut rng));
            bn.forward(&x);
        }
        let saved = bn.state_dict();
        assert_eq!(saved.len(), 4, "gamma, beta, running mean, running var");
        let drifted_mean = bn.running_mean();

        // Mutate, then restore.
        bn.set_running_stats(Tensor::zeros(&[2]), Tensor::ones(&[2]));
        assert_ne!(bn.running_mean(), drifted_mean);
        bn.load_state_dict(&saved).unwrap();
        assert_eq!(bn.running_mean(), drifted_mean);
    }

    #[test]
    fn running_stats_never_receive_gradients() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let bn = BatchNorm2d::new(2);
        let x = Var::constant(Tensor::rand_uniform(&[2, 2, 3, 3], -1.0, 1.0, &mut rng));
        bn.forward(&x).square().mean_all().backward();
        let params = bn.parameters();
        assert!(params[0].grad().is_some(), "gamma must get a gradient");
        assert!(params[1].grad().is_some(), "beta must get a gradient");
        assert!(params[2].grad().is_none(), "running mean is a buffer");
        assert!(params[3].grad().is_none(), "running var is a buffer");
    }

    #[test]
    fn gradients_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let bn = BatchNorm2d::new(2);
        let x = Tensor::rand_uniform(&[3, 2, 4, 4], -1.0, 1.0, &mut rng);
        // Check only the trainable parameters (gamma, beta); the buffer
        // entries do not affect the training-mode loss.
        let trainable = &bn.parameters()[..2];
        assert_gradients_close(
            trainable,
            |_| bn.forward(&Var::constant(x.clone())).square().mean_all(),
            1e-2,
            2e-2,
        );
    }
}
