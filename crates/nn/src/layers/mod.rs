//! Neural-network layers.
//!
//! All layers hold their parameters as [`crate::Var`] leaves and implement
//! [`crate::Module`]; single-input layers also implement [`crate::Layer`]
//! so they compose in [`Sequential`].

mod activation;
mod container;
mod conv;
mod linear;
mod norm;
mod pool;
mod rnn;

pub use activation::{Dropout, Relu, Sigmoid, Tanh};
pub use container::Sequential;
pub use conv::{Conv2d, ConvTranspose2d};
pub use linear::Linear;
pub use norm::BatchNorm2d;
pub use pool::{AvgPool2d, MaxPool2d, Upsample2d};
pub use rnn::{ConvLstmCell, LstmCell};
