//! Recurrent cells: fully connected LSTM and convolutional LSTM.

use rand::Rng;

use geotorch_tensor::Tensor;

use crate::init::xavier_uniform;
use crate::layers::Conv2d;
use crate::{Layer, Module, Var};

/// A standard LSTM cell over flat feature vectors.
///
/// Gate layout along the `4H` axis is `[input, forget, cell, output]`.
pub struct LstmCell {
    w_ih: Var, // [4H, in]
    w_hh: Var, // [4H, H]
    bias: Var, // [4H]
    hidden_size: usize,
}

impl LstmCell {
    /// New cell with Xavier-initialised weights. The forget-gate bias is
    /// initialised to 1 (standard trick for gradient flow early in
    /// training).
    pub fn new<R: Rng>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        let mut bias = Tensor::zeros(&[4 * hidden_size]);
        for i in hidden_size..2 * hidden_size {
            bias.as_mut_slice()[i] = 1.0;
        }
        LstmCell {
            w_ih: Var::parameter(xavier_uniform(
                &[4 * hidden_size, input_size],
                input_size,
                hidden_size,
                rng,
            )),
            w_hh: Var::parameter(xavier_uniform(
                &[4 * hidden_size, hidden_size],
                hidden_size,
                hidden_size,
                rng,
            )),
            bias: Var::parameter(bias),
            hidden_size,
        }
    }

    /// Zero initial state for a batch of `b` sequences.
    pub fn zero_state(&self, b: usize) -> (Var, Var) {
        (
            Var::constant(Tensor::zeros(&[b, self.hidden_size])),
            Var::constant(Tensor::zeros(&[b, self.hidden_size])),
        )
    }

    /// One timestep: `x [B, in]`, state `(h, c)` → new `(h, c)`.
    pub fn step(&self, x: &Var, state: (&Var, &Var)) -> (Var, Var) {
        let (h, c) = state;
        let gates = x
            .matmul(&self.w_ih.permute(&[1, 0]))
            .add(&h.matmul(&self.w_hh.permute(&[1, 0])))
            .add(&self.bias);
        let hs = self.hidden_size;
        let i = gates.narrow(1, 0, hs).sigmoid();
        let f = gates.narrow(1, hs, 2 * hs).sigmoid();
        let g = gates.narrow(1, 2 * hs, 3 * hs).tanh();
        let o = gates.narrow(1, 3 * hs, 4 * hs).sigmoid();
        let c_new = f.mul(c).add(&i.mul(&g));
        let h_new = o.mul(&c_new.tanh());
        (h_new, c_new)
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }
}

impl Module for LstmCell {
    fn parameters(&self) -> Vec<Var> {
        vec![self.w_ih.clone(), self.w_hh.clone(), self.bias.clone()]
    }
}

/// A convolutional LSTM cell (Shi et al., 2015) over `[B, C, H, W]` maps.
///
/// Both the input-to-state and state-to-state transitions are convolutions,
/// so the hidden state preserves the spatial grid — the key property the
/// paper's ConvLSTM model exploits for grid-based spatiotemporal data.
pub struct ConvLstmCell {
    conv_x: Conv2d, // in_channels → 4 * hidden_channels
    conv_h: Conv2d, // hidden_channels → 4 * hidden_channels (no bias)
    hidden_channels: usize,
}

impl ConvLstmCell {
    /// New cell; `kernel` must be odd so convolutions preserve extent.
    pub fn new<R: Rng>(
        in_channels: usize,
        hidden_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel % 2 == 1, "ConvLstmCell kernel must be odd");
        ConvLstmCell {
            conv_x: Conv2d::same(in_channels, 4 * hidden_channels, kernel, rng),
            conv_h: Conv2d::same(hidden_channels, 4 * hidden_channels, kernel, rng).without_bias(),
            hidden_channels,
        }
    }

    /// Zero initial state for batch `b` over an `h × w` grid.
    pub fn zero_state(&self, b: usize, h: usize, w: usize) -> (Var, Var) {
        (
            Var::constant(Tensor::zeros(&[b, self.hidden_channels, h, w])),
            Var::constant(Tensor::zeros(&[b, self.hidden_channels, h, w])),
        )
    }

    /// One timestep: `x [B, C, H, W]`, state `(h, c)` → new `(h, c)`.
    pub fn step(&self, x: &Var, state: (&Var, &Var)) -> (Var, Var) {
        let (h, c) = state;
        let gates = self.conv_x.forward(x).add(&self.conv_h.forward(h));
        let hc = self.hidden_channels;
        let i = gates.narrow(1, 0, hc).sigmoid();
        let f = gates.narrow(1, hc, 2 * hc).sigmoid();
        let g = gates.narrow(1, 2 * hc, 3 * hc).tanh();
        let o = gates.narrow(1, 3 * hc, 4 * hc).sigmoid();
        let c_new = f.mul(c).add(&i.mul(&g));
        let h_new = o.mul(&c_new.tanh());
        (h_new, c_new)
    }

    /// Hidden feature-map count.
    pub fn hidden_channels(&self) -> usize {
        self.hidden_channels
    }
}

impl Module for ConvLstmCell {
    fn parameters(&self) -> Vec<Var> {
        let mut params = self.conv_x.parameters();
        params.extend(self.conv_h.parameters());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_close;
    use rand::SeedableRng;

    #[test]
    fn lstm_step_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let cell = LstmCell::new(5, 3, &mut rng);
        let (h0, c0) = cell.zero_state(2);
        let x = Var::constant(Tensor::ones(&[2, 5]));
        let (h1, c1) = cell.step(&x, (&h0, &c0));
        assert_eq!(h1.shape(), vec![2, 3]);
        assert_eq!(c1.shape(), vec![2, 3]);
        assert_eq!(cell.hidden_size(), 3);
        assert_eq!(cell.parameters().len(), 3);
    }

    #[test]
    fn lstm_state_evolves_over_sequence() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cell = LstmCell::new(2, 4, &mut rng);
        let (mut h, mut c) = cell.zero_state(1);
        let mut last = h.value();
        for t in 0..3 {
            let x = Var::constant(Tensor::full(&[1, 2], t as f32 + 1.0));
            let (h2, c2) = cell.step(&x, (&h, &c));
            h = h2;
            c = c2;
            assert_ne!(h.value(), last, "state should change with new input");
            last = h.value();
        }
    }

    #[test]
    fn lstm_gradients_flow_through_time() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cell = LstmCell::new(2, 2, &mut rng);
        let xs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::rand_uniform(&[1, 2], -1.0, 1.0, &mut rng))
            .collect();
        assert_gradients_close(
            &cell.parameters(),
            |_| {
                let (mut h, mut c) = cell.zero_state(1);
                for x in &xs {
                    let (h2, c2) = cell.step(&Var::constant(x.clone()), (&h, &c));
                    h = h2;
                    c = c2;
                }
                h.square().mean_all()
            },
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn convlstm_preserves_grid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cell = ConvLstmCell::new(2, 4, 3, &mut rng);
        let (h0, c0) = cell.zero_state(2, 8, 6);
        let x = Var::constant(Tensor::ones(&[2, 2, 8, 6]));
        let (h1, _) = cell.step(&x, (&h0, &c0));
        assert_eq!(h1.shape(), vec![2, 4, 8, 6]);
        assert_eq!(cell.hidden_channels(), 4);
    }

    #[test]
    fn convlstm_gradients_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let cell = ConvLstmCell::new(1, 2, 3, &mut rng);
        let x0 = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
        let x1 = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
        assert_gradients_close(
            &cell.parameters(),
            |_| {
                let (h0, c0) = cell.zero_state(1, 4, 4);
                let (h1, c1) = cell.step(&Var::constant(x0.clone()), (&h0, &c0));
                let (h2, _) = cell.step(&Var::constant(x1.clone()), (&h1, &c1));
                h2.square().mean_all()
            },
            1e-2,
            3e-2,
        );
    }

    #[test]
    #[should_panic(expected = "kernel must be odd")]
    fn convlstm_rejects_even_kernel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        ConvLstmCell::new(1, 1, 2, &mut rng);
    }
}
