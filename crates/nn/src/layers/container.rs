//! Layer composition.

use crate::{Layer, Module, Var};

/// A chain of layers applied in order, like `torch.nn.Sequential`.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty chain (identity).
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    #[allow(clippy::should_implement_trait)] // builder-style append, not arithmetic
    pub fn add(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn parameters(&self) -> Vec<Var> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    fn set_training(&self, training: bool) {
        for layer in &self.layers {
            layer.set_training(training);
        }
    }
}

impl Layer for Sequential {
    fn forward(&self, input: &Var) -> Var {
        self.layers
            .iter()
            .fold(input.clone(), |x, layer| layer.forward(&x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear, MaxPool2d, Relu};
    use geotorch_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn empty_sequential_is_identity() {
        let s = Sequential::new();
        assert!(s.is_empty());
        let x = Var::constant(Tensor::arange(4));
        assert_eq!(s.forward(&x).value(), x.value());
    }

    #[test]
    fn cnn_chain_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let net = Sequential::new()
            .add(Conv2d::same(1, 4, 3, &mut rng))
            .add(Relu)
            .add(MaxPool2d::new(2, 2));
        let x = Var::constant(Tensor::zeros(&[2, 1, 8, 8]));
        assert_eq!(net.forward(&x).shape(), vec![2, 4, 4, 4]);
        assert_eq!(net.len(), 3);
        assert_eq!(net.parameters().len(), 2);
    }

    #[test]
    fn parameters_collected_in_order() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let net = Sequential::new()
            .add(Linear::new(3, 4, &mut rng))
            .add(Relu)
            .add(Linear::new(4, 2, &mut rng));
        let params = net.parameters();
        assert_eq!(params.len(), 4);
        assert_eq!(params[0].shape(), vec![4, 3]);
        assert_eq!(params[2].shape(), vec![2, 4]);
    }
}
