//! Fully connected layer.

use rand::Rng;

use geotorch_tensor::Tensor;

use crate::init::kaiming_uniform;
use crate::{Layer, Module, Var};

/// Affine map `y = x Wᵀ + b` with `x [B, in]`, `W [out, in]`, `b [out]`.
pub struct Linear {
    weight: Var,
    bias: Option<Var>,
}

impl Linear {
    /// New layer with Kaiming-uniform weights and zero bias.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Linear {
            weight: Var::parameter(kaiming_uniform(
                &[out_features, in_features],
                in_features,
                rng,
            )),
            bias: Some(Var::parameter(Tensor::zeros(&[out_features]))),
        }
    }

    /// New layer without a bias term.
    pub fn new_no_bias<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Linear {
            weight: Var::parameter(kaiming_uniform(
                &[out_features, in_features],
                in_features,
                rng,
            )),
            bias: None,
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Var> {
        let mut params = vec![self.weight.clone()];
        params.extend(self.bias.clone());
        params
    }
}

impl Layer for Linear {
    fn forward(&self, input: &Var) -> Var {
        let y = input.matmul(&self.weight.permute(&[1, 0]));
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_close;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let l = Linear::new(4, 3, &mut rng);
        let x = Var::constant(Tensor::ones(&[2, 4]));
        assert_eq!(l.forward(&x).shape(), vec![2, 3]);
        assert_eq!(l.in_features(), 4);
        assert_eq!(l.out_features(), 3);
        assert_eq!(l.parameters().len(), 2);
    }

    #[test]
    fn known_linear_map() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let l = Linear::new(2, 1, &mut rng);
        l.parameters()[0].assign(Tensor::from_vec(vec![2.0, 3.0], &[1, 2]));
        l.parameters()[1].assign(Tensor::from_vec(vec![1.0], &[1]));
        let x = Var::constant(Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        assert_eq!(l.forward(&x).value().item(), 6.0);
    }

    #[test]
    fn gradients_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let l = Linear::new(3, 2, &mut rng);
        let x = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let params = l.parameters();
        assert_gradients_close(
            &params,
            |_| l.forward(&Var::constant(x.clone())).square().mean_all(),
            1e-3,
            5e-3,
        );
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let l = Linear::new_no_bias(3, 2, &mut rng);
        assert_eq!(l.parameters().len(), 1);
    }
}
