//! Convolutional layers.

use rand::Rng;

use geotorch_tensor::Tensor;

use crate::init::kaiming_uniform;
use crate::{Layer, Module, Var};

/// 2-D convolution layer. Input `[B, C, H, W]`, weight `[O, C, k, k]`.
pub struct Conv2d {
    weight: Var,
    bias: Option<Var>,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// New layer with a square kernel, Kaiming init, and zero bias.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Var::parameter(kaiming_uniform(
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Some(Var::parameter(Tensor::zeros(&[out_channels]))),
            stride,
            pad,
        }
    }

    /// Same-padding convenience: stride 1, pad `kernel / 2` (odd kernels
    /// preserve spatial extent).
    pub fn same<R: Rng>(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut R) -> Self {
        Conv2d::new(in_channels, out_channels, kernel, 1, kernel / 2, rng)
    }

    /// Drop the bias term.
    pub fn without_bias(mut self) -> Self {
        self.bias = None;
        self
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }
}

impl Module for Conv2d {
    fn parameters(&self) -> Vec<Var> {
        let mut params = vec![self.weight.clone()];
        params.extend(self.bias.clone());
        params
    }
}

impl Layer for Conv2d {
    fn forward(&self, input: &Var) -> Var {
        input.conv2d(&self.weight, self.bias.as_ref(), self.stride, self.pad)
    }
}

/// Transposed 2-D convolution layer (learned upsampling).
/// Input `[B, C, H, W]`, weight `[C, O, k, k]`.
pub struct ConvTranspose2d {
    weight: Var,
    bias: Option<Var>,
    stride: usize,
    pad: usize,
}

impl ConvTranspose2d {
    /// New layer; commonly `kernel == stride` for exact ×stride upsampling.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        ConvTranspose2d {
            weight: Var::parameter(kaiming_uniform(
                &[in_channels, out_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Some(Var::parameter(Tensor::zeros(&[out_channels]))),
            stride,
            pad,
        }
    }
}

impl Module for ConvTranspose2d {
    fn parameters(&self) -> Vec<Var> {
        let mut params = vec![self.weight.clone()];
        params.extend(self.bias.clone());
        params
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&self, input: &Var) -> Var {
        input.conv_transpose2d(&self.weight, self.bias.as_ref(), self.stride, self.pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_close;
    use rand::SeedableRng;

    #[test]
    fn conv_same_preserves_spatial_extent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let c = Conv2d::same(3, 8, 3, &mut rng);
        let x = Var::constant(Tensor::zeros(&[2, 3, 16, 16]));
        assert_eq!(c.forward(&x).shape(), vec![2, 8, 16, 16]);
        assert_eq!(c.out_channels(), 8);
    }

    #[test]
    fn conv_strided_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let c = Conv2d::new(1, 4, 3, 2, 1, &mut rng);
        let x = Var::constant(Tensor::zeros(&[1, 1, 8, 8]));
        assert_eq!(c.forward(&x).shape(), vec![1, 4, 4, 4]);
    }

    #[test]
    fn conv_transpose_doubles_extent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let c = ConvTranspose2d::new(4, 2, 2, 2, 0, &mut rng);
        let x = Var::constant(Tensor::zeros(&[1, 4, 5, 5]));
        assert_eq!(c.forward(&x).shape(), vec![1, 2, 10, 10]);
    }

    #[test]
    fn conv_layer_gradients_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let c = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::rand_uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        assert_gradients_close(
            &c.parameters(),
            |_| c.forward(&Var::constant(x.clone())).square().mean_all(),
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn without_bias_drops_parameter() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let c = Conv2d::new(1, 1, 3, 1, 1, &mut rng).without_bias();
        assert_eq!(c.parameters().len(), 1);
    }
}
