//! Pooling and upsampling layers.

use crate::{Layer, Module, Var};

/// Max pooling over square windows.
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Window of `kernel × kernel`, stepping by `stride`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        MaxPool2d { kernel, stride }
    }
}

impl Module for MaxPool2d {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl Layer for MaxPool2d {
    fn forward(&self, input: &Var) -> Var {
        input.maxpool2d(self.kernel, self.stride)
    }
}

/// Average pooling over square windows.
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
}

impl AvgPool2d {
    /// Window of `kernel × kernel`, stepping by `stride`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        AvgPool2d { kernel, stride }
    }
}

impl Module for AvgPool2d {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl Layer for AvgPool2d {
    fn forward(&self, input: &Var) -> Var {
        input.avgpool2d(self.kernel, self.stride)
    }
}

/// Nearest-neighbour upsampling by an integer factor.
pub struct Upsample2d {
    factor: usize,
}

impl Upsample2d {
    /// Scale both spatial axes by `factor`.
    pub fn new(factor: usize) -> Self {
        assert!(factor > 0, "factor must be positive");
        Upsample2d { factor }
    }
}

impl Module for Upsample2d {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl Layer for Upsample2d {
    fn forward(&self, input: &Var) -> Var {
        input.upsample_nearest2d(self.factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_tensor::Tensor;

    #[test]
    fn pool_shapes() {
        let x = Var::constant(Tensor::zeros(&[1, 2, 8, 8]));
        assert_eq!(MaxPool2d::new(2, 2).forward(&x).shape(), vec![1, 2, 4, 4]);
        assert_eq!(AvgPool2d::new(2, 2).forward(&x).shape(), vec![1, 2, 4, 4]);
        assert_eq!(Upsample2d::new(3).forward(&x).shape(), vec![1, 2, 24, 24]);
    }

    #[test]
    fn upsample_then_pool_is_identity_for_avg() {
        let x = Var::constant(Tensor::arange(16).reshape(&[1, 1, 4, 4]));
        let y = AvgPool2d::new(2, 2).forward(&Upsample2d::new(2).forward(&x));
        assert_eq!(y.value(), x.value());
    }
}
