//! Activation and regularisation layers.

use std::cell::{Cell, RefCell};

use rand::{Rng, SeedableRng};

use geotorch_tensor::Tensor;

use crate::{Layer, Module, Var};

/// Rectified linear unit layer.
#[derive(Default)]
pub struct Relu;

impl Module for Relu {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl Layer for Relu {
    fn forward(&self, input: &Var) -> Var {
        input.relu()
    }
}

/// Sigmoid layer.
#[derive(Default)]
pub struct Sigmoid;

impl Module for Sigmoid {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl Layer for Sigmoid {
    fn forward(&self, input: &Var) -> Var {
        input.sigmoid()
    }
}

/// Tanh layer.
#[derive(Default)]
pub struct Tanh;

impl Module for Tanh {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl Layer for Tanh {
    fn forward(&self, input: &Var) -> Var {
        input.tanh()
    }
}

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; evaluation is the
/// identity.
pub struct Dropout {
    p: f32,
    training: Cell<bool>,
    rng: RefCell<rand::rngs::StdRng>,
}

impl Dropout {
    /// New dropout with drop probability `p ∈ [0, 1)` and a deterministic
    /// seed for the mask stream.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            training: Cell::new(true),
            rng: RefCell::new(rand::rngs::StdRng::seed_from_u64(seed)),
        }
    }
}

impl Module for Dropout {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

impl Layer for Dropout {
    fn forward(&self, input: &Var) -> Var {
        if !self.training.get() || self.p == 0.0 {
            return input.clone();
        }
        let shape = input.shape();
        let scale = 1.0 / (1.0 - self.p);
        let mut rng = self.rng.borrow_mut();
        let mask: Vec<f32> = (0..shape.iter().product::<usize>())
            .map(|_| if rng.gen::<f32>() < self.p { 0.0 } else { scale })
            .collect();
        input.mul(&Var::constant(Tensor::from_vec(mask, &shape)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations_forward() {
        let x = Var::constant(Tensor::from_vec(vec![-1.0, 1.0], &[2]));
        assert_eq!(Relu.forward(&x).value().as_slice(), &[0.0, 1.0]);
        assert!(Sigmoid.forward(&x).value().as_slice()[1] > 0.5);
        assert!(Tanh.forward(&x).value().as_slice()[0] < 0.0);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Var::constant(Tensor::ones(&[100]));
        assert_eq!(d.forward(&x).value(), Tensor::ones(&[100]));
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let d = Dropout::new(0.3, 7);
        let x = Var::constant(Tensor::ones(&[100_000]));
        let y = d.forward(&x).value();
        // E[y] = 1; allow sampling noise.
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
        // Roughly 30% zeros.
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 100_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "dropout p must be in")]
    fn dropout_rejects_bad_p() {
        Dropout::new(1.0, 0);
    }
}
