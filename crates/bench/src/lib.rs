//! Shared infrastructure for the GeoTorch-RS paper-reproduction harness
//! and criterion benchmarks: standard model/dataset configurations
//! (matching §V of the paper), result-table formatting, and a
//! peak-tracking allocator for the memory experiments.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::SeedableRng;

use geotorch_core::{TrainConfig, UpdateMode};
use geotorch_tensor::Device;
use geotorch_datasets::StGridDataset;
use geotorch_models::grid::{ConvLstm, DeepStnPlus, PeriodicalCnn, StResNet};
use geotorch_models::GridModel;

pub mod stream;

/// A one-line host descriptor appended to every `results/*.md` artifact:
/// core count plus the tensor pool's high-water mark, so single-core
/// container runs (where data-parallel speedups flatten to ~1x) are
/// self-describing.
pub fn host_stamp() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = geotorch_tensor::pool::stats();
    format!(
        "\n_Host: {cores} core(s); tensor pool high-water {:.1} MB._\n",
        pool.high_water_bytes as f64 / 1e6
    )
}

/// The periodical feature lengths used by every grid experiment
/// (closeness 3, period 4, trend 2 — within the ranges of Listing 4).
pub const PERIODICAL_LENS: (usize, usize, usize) = (3, 4, 1);

/// Sequence length for ConvLSTM experiments.
pub const CONVLSTM_HISTORY: usize = 12;

/// The four grid models of Tables IV/V, in the paper's column order.
pub const GRID_MODEL_NAMES: [&str; 4] = ["PeriodicalCNN", "ConvLSTM", "ST-ResNet", "DeepSTN+"];

/// Instantiate a grid model by Table IV column name for a dataset of
/// `c` channels on an `h × w` grid.
///
/// # Panics
/// On an unknown name.
pub fn make_grid_model(name: &str, c: usize, h: usize, w: usize, seed: u64) -> Box<dyn GridModel> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match name {
        "PeriodicalCNN" => Box::new(PeriodicalCnn::new(c, PERIODICAL_LENS, 8, &mut rng)),
        // The paper's ConvLSTM is by far its largest model (Table VII); a
        // wide cell unrolled over a 12-frame history mirrors that.
        "ConvLSTM" => Box::new(ConvLstm::new(c, 16, 3, 1, &mut rng)),
        "ST-ResNet" => Box::new(StResNet::new(c, PERIODICAL_LENS, h, w, 16, 2, &mut rng)),
        "DeepSTN+" => Box::new(DeepStnPlus::new(c, PERIODICAL_LENS, h, w, 16, &mut rng)),
        other => panic!("unknown grid model {other}"),
    }
}

/// Configure a dataset with the representation a model consumes.
pub fn set_representation(dataset: &mut StGridDataset, model_name: &str) {
    if model_name == "ConvLSTM" {
        dataset.set_sequential_representation(CONVLSTM_HISTORY, 1);
    } else {
        dataset.set_periodical_representation(
            PERIODICAL_LENS.0,
            PERIODICAL_LENS.1,
            PERIODICAL_LENS.2,
        );
    }
}

/// The §V-C training protocol: Adam, incremental updates, early stopping
/// on the validation metric.
pub fn paper_train_config(epochs: usize, seed: u64) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        learning_rate: 5e-3,
        early_stopping_patience: Some(8),
        update_mode: UpdateMode::Incremental,
        gradient_clip: None,
        seed,
        device: Device::Cpu,
        replicas: 1,
    }
}

/// Mean and maximum absolute deviation of a sample (the paper reports
/// `avg ± spread` over 5 iterations).
pub fn mean_and_spread(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (f32::NAN, f32::NAN);
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    let spread = values
        .iter()
        .map(|v| (v - mean).abs())
        .fold(0.0f32, f32::max);
    (mean, spread)
}

/// Format a training-speed cell as `seconds/epoch (samples/s)` — the
/// shared shape for every timing table in the harness.
pub fn timing_cell(epoch_seconds: f64, samples_per_sec: f64) -> String {
    format!("{epoch_seconds:.3} ({samples_per_sec:.1}/s)")
}

/// Linear-interpolation percentile (`p` in `[0, 100]`) of an unsorted
/// sample. Returns NaN for an empty sample.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Request-latency digest (milliseconds): what the serving load
/// generator reports per configuration.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Number of requests observed.
    pub count: usize,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
}

impl LatencySummary {
    /// Digest a sample of per-request latencies given in seconds.
    pub fn from_secs(latencies: &[f64]) -> LatencySummary {
        let ms: Vec<f64> = latencies.iter().map(|s| s * 1e3).collect();
        let mean = if ms.is_empty() {
            f64::NAN
        } else {
            ms.iter().sum::<f64>() / ms.len() as f64
        };
        LatencySummary {
            count: ms.len(),
            mean_ms: mean,
            p50_ms: percentile(&ms, 50.0),
            p95_ms: percentile(&ms, 95.0),
            p99_ms: percentile(&ms, 99.0),
        }
    }
}

/// Render rows as a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// A [`GlobalAlloc`] wrapper that tracks current and peak live bytes.
/// Install in a binary with `#[global_allocator]` and bracket a region
/// with [`CountingAllocator::reset_peak`] / [`CountingAllocator::peak`].
pub struct CountingAllocator {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAllocator {
    /// A fresh counter (const so it can be a static).
    pub const fn new() -> CountingAllocator {
        CountingAllocator {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Currently live heap bytes.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Peak live bytes since the last reset.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reset the peak to the current live size and return the live size.
    pub fn reset_peak(&self) -> usize {
        let live = self.live();
        self.peak.store(live, Ordering::Relaxed);
        live
    }

    fn record_alloc(&self, size: usize) {
        let live = self.live.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn record_dealloc(&self, size: usize) {
        self.live.fetch_sub(size, Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            self.record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            self.record_dealloc(layout.size());
            self.record_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_spread_values() {
        let (mean, spread) = mean_and_spread(&[1.0, 2.0, 3.0]);
        assert_eq!(mean, 2.0);
        assert_eq!(spread, 1.0);
        let (m, s) = mean_and_spread(&[5.0]);
        assert_eq!((m, s), (5.0, 0.0));
        assert!(mean_and_spread(&[]).0.is_nan());
    }

    #[test]
    fn percentile_interpolates() {
        let values = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 100.0), 4.0);
        assert_eq!(percentile(&values, 50.0), 2.5);
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn latency_summary_digest() {
        // 100 latencies of 1ms..=100ms.
        let secs: Vec<f64> = (1..=100).map(|i| i as f64 / 1e3).collect();
        let s = LatencySummary::from_secs(&secs);
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert!((s.p50_ms - 50.5).abs() < 1e-9);
        assert!(s.p95_ms > 94.0 && s.p95_ms < 96.1);
        assert!(s.p99_ms > 98.0 && s.p99_ms <= 100.0);
    }

    #[test]
    fn timing_cell_format() {
        assert_eq!(timing_cell(0.5, 123.45), "0.500 (123.5/s)");
    }

    #[test]
    fn markdown_table_layout() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[3], "| 3 | 4 |");
    }

    #[test]
    fn model_factory_builds_all_names() {
        for name in GRID_MODEL_NAMES {
            let m = make_grid_model(name, 2, 8, 8, 0);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    fn representation_matches_model() {
        let mut ds = StGridDataset::taxi_nyc_stdn(21, 0);
        set_representation(&mut ds, "ConvLSTM");
        assert!(matches!(
            ds.representation(),
            geotorch_datasets::Representation::Sequential { .. }
        ));
        set_representation(&mut ds, "DeepSTN+");
        assert!(matches!(
            ds.representation(),
            geotorch_datasets::Representation::Periodical { .. }
        ));
    }

    #[test]
    fn counting_allocator_tracks_peak() {
        // Exercise the bookkeeping directly (not installed as the global
        // allocator in tests).
        let counter = CountingAllocator::new();
        counter.record_alloc(100);
        counter.record_alloc(200);
        counter.record_dealloc(100);
        counter.record_alloc(50);
        assert_eq!(counter.live(), 250);
        assert_eq!(counter.peak(), 300);
        counter.reset_peak();
        assert_eq!(counter.peak(), 250);
    }
}
