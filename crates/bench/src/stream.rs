//! The streaming Fig. 8 scenario: synthetic NYC-like trips generated in
//! chunks, spilled to disk partition by partition, then streamed through
//! the `SpillBatchStream → PrefetchLoader → fit_stream` pipeline with K
//! data-parallel replicas. Peak memory is one chunk + the prefetch
//! queue, independent of total row count — this is how 100M+ trips
//! train on a laptop.
//!
//! Shared between `repro fig8_stream` and the `train-scale` CI smoke
//! test so both measure exactly the same pipeline.

use std::path::Path;
use std::sync::Arc;

use geotorch_converter::{
    BatchStream, DfFormatter, LoaderError, PrefetchLoader, RowTransformer, SpillBatchStream,
};
use geotorch_core::{TrainConfig, TrainError, TrainReport, Trainer, UpdateMode};
use geotorch_dataframe::{Column, DataFrame, SpillStore};
use geotorch_datasets::synth::TripGenerator;
use geotorch_nn::layers::{Linear, Relu, Sequential};
use geotorch_nn::{Layer, Var};
use geotorch_tensor::Device;
use rand::SeedableRng;

/// Feature columns fed to the trip MLP.
pub const TRIP_FEATURES: [&str; 4] = ["lat", "lon", "hour", "dow"];

/// One generated chunk of the trip feature/label table, as raw columns
/// in [`trip_schema`] order.
fn chunk_columns(seed: u64, rows: usize) -> Vec<Column> {
    let trips = TripGenerator::nyc_like(seed).generate(rows);
    let mut lat = Vec::with_capacity(rows);
    let mut lon = Vec::with_capacity(rows);
    let mut hour = Vec::with_capacity(rows);
    let mut dow = Vec::with_capacity(rows);
    let mut dist = Vec::with_capacity(rows);
    for t in &trips {
        // Centered coordinates and cyclic time features, all O(1) scale.
        lat.push((t.pickup_lat - 40.75) * 10.0);
        lon.push((t.pickup_lon + 73.90) * 10.0);
        let day_sec = t.timestamp.rem_euclid(86_400) as f64;
        hour.push(day_sec / 86_400.0);
        dow.push((t.timestamp.div_euclid(86_400).rem_euclid(7)) as f64 / 7.0);
        // Label: straight-line trip length in degree space, scaled to
        // O(1) — a learnable function of pickup location and time.
        let dlat = t.dropoff_lat - t.pickup_lat;
        let dlon = t.dropoff_lon - t.pickup_lon;
        dist.push((dlat * dlat + dlon * dlon).sqrt() * 10.0);
    }
    vec![
        Column::F64(lat),
        Column::F64(lon),
        Column::F64(hour),
        Column::F64(dow),
        Column::F64(dist),
    ]
}

/// Generate `rows_total` synthetic trips in `chunk_rows`-sized chunks
/// (per-chunk seeds, deterministic) and spill each chunk straight to
/// `dir` — at no point do more than `chunk_rows` trips exist in memory.
pub fn spill_trips(dir: &Path, rows_total: usize, chunk_rows: usize) -> SpillStore {
    let _ = std::fs::remove_dir_all(dir);
    let schema = {
        let cols = chunk_columns(0, 1);
        DataFrame::from_columns(
            TRIP_FEATURES
                .iter()
                .map(|n| (*n).to_string())
                .chain(["dist".to_string()])
                .zip(cols)
                .collect(),
        )
        .expect("trip schema")
        .schema()
        .clone()
    };
    let mut store = SpillStore::create(dir, schema).expect("spill dir");
    let mut remaining = rows_total;
    let mut chunk_idx = 0u64;
    while remaining > 0 {
        let rows = remaining.min(chunk_rows);
        let cols = chunk_columns(42 + chunk_idx, rows);
        store.spill(&cols).expect("spill chunk");
        remaining -= rows;
        chunk_idx += 1;
    }
    store
}

/// The trip-distance MLP: 4 → 64 → 64 → 1 with ReLU, deterministic in
/// `seed`.
pub fn trip_mlp(seed: u64) -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Sequential::new()
        .add(Linear::new(4, 64, &mut rng))
        .add(Relu)
        .add(Linear::new(64, 64, &mut rng))
        .add(Relu)
        .add(Linear::new(64, 1, &mut rng))
}

/// Train the trip MLP over a spilled store with `replicas` data-parallel
/// workers, streaming through a double-buffered prefetch loader.
pub fn train_streamed(
    store: &Arc<SpillStore>,
    replicas: usize,
    epochs: usize,
    batch_size: usize,
) -> Result<TrainReport, TrainError> {
    let config = TrainConfig {
        epochs,
        batch_size,
        learning_rate: 1e-3,
        early_stopping_patience: None,
        update_mode: UpdateMode::Incremental,
        gradient_clip: None,
        seed: 9,
        device: Device::Cpu,
        replicas,
    };
    let trainer = Trainer::new(config);
    let model = trip_mlp(3);
    let fmt = DfFormatter::for_prediction(&TRIP_FEATURES, &[4], &["dist"], &[1])
        .expect("trip formatter");
    let rt = Arc::new(RowTransformer::new(batch_size));
    let store = Arc::clone(store);
    let mut make = move |_epoch: usize| -> Result<Box<dyn BatchStream>, LoaderError> {
        let inner = SpillBatchStream::new(Arc::clone(&store), fmt.clone(), Arc::clone(&rt));
        Ok(Box::new(PrefetchLoader::new(Box::new(inner), 2)))
    };
    trainer.fit_stream(
        &model,
        &|r| Box::new(trip_mlp(100 + r as u64)),
        &|m: &Sequential, x: &Var| m.forward(x),
        &mut make,
        &mut || 0.0,
        None,
    )
}

/// Mean training throughput over the report's epochs, in samples/s.
pub fn mean_samples_per_sec(report: &TrainReport) -> f64 {
    if report.samples_per_sec.is_empty() {
        return 0.0;
    }
    report.samples_per_sec.iter().sum::<f64>() / report.samples_per_sec.len() as f64
}
