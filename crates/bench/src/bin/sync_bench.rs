//! `sync_bench` — measures the registry sync protocol's wire cost over
//! real HTTP and proves delta transfer is O(changed tensors).
//!
//! ```sh
//! cargo run --release -p geotorch-bench --bin sync_bench -- [--quick]
//! ```
//!
//! Two sync-enabled nodes serve the same seeded SatCNN. A fresh store
//! bootstraps from node A (the full-transfer baseline), then node A
//! publishes two fine-tunes — head bias only (1 tensor), then the whole
//! classifier head (2 tensors) — and node B pulls each over HTTP. For
//! every pull the bench asserts:
//!
//! * exactly the changed tensors were fetched, and the payload bytes on
//!   the wire equal the bytes the publish wrote (≤ 2× changed-tensor
//!   bytes even with the manifest included);
//! * the head-only delta is ≥ 10× smaller than both the bootstrap
//!   transfer and a classic full-checkpoint file;
//! * after the final pull both stores are bit-identical (same head
//!   manifest bytes, same payload file bytes for every head entry).
//!
//! The report goes to `results/registry_sync.md`.

use std::path::{Path, PathBuf};

use rand::SeedableRng;

use geotorch_bench::markdown_table;
use geotorch_core::checkpoint;
use geotorch_core::{DeltaStore, Manifest};
use geotorch_models::raster::SatCnn;
use geotorch_nn::Module;
use geotorch_serve::{sync_store, BatchConfig, Registry, ServeConfig, Server, SyncClient};
use geotorch_tensor::{Device, Tensor};

const MODEL: &str = "satcnn";

fn satcnn() -> SatCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    SatCnn::new(3, 16, 16, 10, &mut rng)
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("geotorch_sync_bench_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start_node(dir: &Path) -> Server {
    let mut registry = Registry::new();
    registry.register_classifier(MODEL, None, satcnn);
    assert!(registry.enable_sync(MODEL, dir.to_path_buf()));
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 1,
            device: Device::Cpu,
            ..BatchConfig::default()
        },
        http_workers: 2,
        enable_telemetry: false,
        ..ServeConfig::default()
    };
    Server::start("127.0.0.1:0", registry, config).expect("node starts")
}

/// The seeded state with the tensors named in `changed` shifted by a
/// constant — a stand-in for a fine-tune that touched only those
/// parameters.
fn fine_tuned(changed: &[(usize, f32)]) -> Vec<Tensor> {
    let mut state = satcnn().state_dict();
    for &(i, delta) in changed {
        state[i] = state[i].add_scalar(delta);
    }
    state
}

/// Both stores hold bit-identical heads and, for every entry the head
/// references, bit-identical payload files.
fn assert_stores_bit_identical(dir_a: &Path, dir_b: &Path) {
    let head_a = std::fs::read(dir_a.join("head.json")).expect("node A head");
    let head_b = std::fs::read(dir_b.join("head.json")).expect("node B head");
    assert_eq!(head_a, head_b, "head manifests must be byte-identical");
    let manifest = Manifest::from_json(std::str::from_utf8(&head_a).unwrap()).expect("head parses");
    for (i, entry) in manifest.entries.iter().enumerate() {
        let name = format!("t{i}@{}-{}.json", entry.ver, entry.hash);
        let a = std::fs::read(dir_a.join(&name)).expect("payload on A");
        let b = std::fs::read(dir_b.join(&name)).expect("payload on B");
        assert_eq!(a, b, "payload {name} must be byte-identical on both nodes");
    }
}

struct Row {
    scenario: String,
    fetched: usize,
    payload_bytes: u64,
    manifest_bytes: u64,
}

impl Row {
    fn total(&self) -> u64 {
        self.payload_bytes + self.manifest_bytes
    }
}

fn main() {
    // --quick is accepted for CI-harness uniformity; the bench is
    // already a sub-second scenario.
    let _quick = std::env::args().any(|a| a == "--quick");

    let dir_a = bench_dir("a");
    let dir_b = bench_dir("b");
    let dir_boot = bench_dir("boot");
    let node_a = start_node(&dir_a);
    let node_b = start_node(&dir_b);
    let peer = node_a.addr().to_string();
    assert_eq!(
        node_a.head_id(MODEL),
        node_b.head_id(MODEL),
        "deterministically seeded nodes must start at the same head"
    );

    // The full-transfer baseline: a cold store pulls everything node A
    // has over the same HTTP routes the delta pulls use.
    let mut boot = DeltaStore::open(&dir_boot, Some(MODEL)).expect("open bootstrap store");
    let client = SyncClient::new(&peer);
    let report = sync_store(&mut boot, &client, MODEL).expect("bootstrap sync");
    let tensor_count = boot.head().expect("bootstrap head").entries.len();
    assert_eq!(report.fetched.len(), tensor_count, "bootstrap fetches every tensor");
    let manifest_bytes = boot.head().expect("head").to_json().len() as u64;
    let full = Row {
        scenario: format!("bootstrap (all {tensor_count} tensors)"),
        fetched: report.fetched.len(),
        payload_bytes: report.fetched_bytes,
        manifest_bytes,
    };

    // A classic full-checkpoint file of the same weights, for scale.
    let ckpt_path = std::env::temp_dir().join(format!("geotorch_sync_bench_{}.json", std::process::id()));
    checkpoint::save_named(&satcnn(), MODEL, &ckpt_path).expect("save classic checkpoint");
    let classic_bytes = std::fs::metadata(&ckpt_path).expect("stat checkpoint").len();
    std::fs::remove_file(&ckpt_path).ok();

    // Two fine-tunes on node A; node B pulls each delta over HTTP. The
    // last two tensors are the classifier head (fc2 weight, fc2 bias).
    let last = tensor_count - 1;
    let scenarios: [(&str, Vec<(usize, f32)>); 2] = [
        ("fine-tune: head bias (1 tensor)", vec![(last, 0.75)]),
        ("fine-tune: head layer (2 tensors)", vec![(last - 1, 0.5), (last, 1.25)]),
    ];
    let mut rows = vec![full];
    for (label, changed) in scenarios {
        let publish = node_a
            .publish(MODEL, &fine_tuned(&changed))
            .expect("publish on A");
        let want: Vec<usize> = changed.iter().map(|&(i, _)| i).collect();
        assert_eq!(publish.changed, want, "{label}: publish diffs exactly the changed tensors");
        let report = node_b.sync_from(MODEL, &peer).expect("B pulls the delta");
        assert!(report.advanced, "{label}: the pull must advance B's head");
        assert_eq!(report.id, publish.id);
        assert_eq!(report.fetched, want, "{label}: only changed tensors cross the wire");
        assert_eq!(
            report.fetched_bytes, publish.delta_bytes,
            "{label}: wire payload bytes equal the bytes the publish wrote"
        );

        // Ground truth from node A's disk: the payload files of exactly
        // the changed entries. The wire must not cost more than 2x them
        // (it costs exactly 1x — the bytes ship verbatim).
        let head_json = std::fs::read(dir_a.join("head.json")).expect("A head");
        let head = Manifest::from_json(std::str::from_utf8(&head_json).unwrap()).expect("parses");
        let changed_disk_bytes: u64 = want
            .iter()
            .map(|&i| {
                let e = &head.entries[i];
                let name = format!("t{i}@{}-{}.json", e.ver, e.hash);
                std::fs::metadata(dir_a.join(name)).expect("changed payload").len()
            })
            .sum();
        assert!(
            report.fetched_bytes <= 2 * changed_disk_bytes,
            "{label}: {} wire bytes exceed 2x the {changed_disk_bytes} changed-tensor bytes",
            report.fetched_bytes
        );
        rows.push(Row {
            scenario: label.to_string(),
            fetched: report.fetched.len(),
            payload_bytes: report.fetched_bytes,
            manifest_bytes: head_json.len() as u64,
        });
    }
    assert_stores_bit_identical(&dir_a, &dir_b);
    node_a.shutdown();
    node_b.shutdown();

    let full_total = rows[0].total();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                format!("{}/{tensor_count}", r.fetched),
                format!("{}", r.payload_bytes),
                format!("{}", r.manifest_bytes),
                format!("{}", r.total()),
                format!("{:.1}%", 100.0 * r.total() as f64 / full_total as f64),
            ]
        })
        .collect();
    let table = markdown_table(
        &["scenario", "tensors fetched", "payload bytes", "manifest bytes", "total wire bytes", "vs bootstrap"],
        &table_rows,
    );
    let head_only = &rows[1];
    let ratio = full_total as f64 / head_only.total() as f64;
    let classic_ratio = classic_bytes as f64 / head_only.total() as f64;
    let report = format!(
        "## Registry delta sync — wire bytes are O(changed tensors)\n\n{table}\n_head-bias delta is {ratio:.0}x smaller than the bootstrap transfer and {classic_ratio:.0}x smaller than a classic full-checkpoint file ({classic_bytes} bytes); payload bytes on the wire equal the bytes each publish wrote_\n"
    );
    println!("{report}");
    std::fs::create_dir_all("results").ok();
    let report = format!("{report}{}", geotorch_bench::host_stamp());
    std::fs::write("results/registry_sync.md", &report).ok();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
    std::fs::remove_dir_all(&dir_boot).ok();

    // The headline O(changed tensors) bound: the head-only fine-tune
    // undercuts both full transfers >= 10x (per-delta 2x payload bounds
    // were asserted inside the loop).
    if ratio < 10.0 || classic_ratio < 10.0 {
        eprintln!(
            "FAIL: head-only delta must be >= 10x smaller than a full transfer (got {ratio:.1}x vs bootstrap, {classic_ratio:.1}x vs classic file)"
        );
        std::process::exit(1);
    }
}
