//! Quick single-dataset comparison of the four grid models under the
//! paper's training protocol — a lighter-weight companion to
//! `repro table4` for iterating on datasets or hyper-parameters.
//!
//! ```sh
//! cargo run --release -p geotorch-bench --bin compare_grid_models
//! ```

use std::time::Instant;

use geotorch_bench::{make_grid_model, paper_train_config, set_representation};
use geotorch_core::Trainer;
use geotorch_datasets::{chronological_split, StGridDataset};

fn main() {
    println!("BikeNYC-DeepSTN (14 days), paper protocol, seed 1\n");
    println!("{:<16} {:>7} {:>10} {:>9} {:>9}", "model", "epochs", "s/epoch", "MAE", "RMSE");
    for name in geotorch_bench::GRID_MODEL_NAMES {
        let mut dataset = StGridDataset::bike_nyc_deepstn(14, 1);
        set_representation(&mut dataset, name);
        let (_, c, h, w) = dataset.dims();
        let model = make_grid_model(name, c, h, w, 7);
        let epochs = if name == "ConvLSTM" { 12 } else { 40 };
        let trainer = Trainer::new(paper_train_config(epochs, 0));
        let (train, val, test) = chronological_split(dataset.len());
        let start = Instant::now();
        let report = trainer.fit_grid(model.as_ref(), &dataset, &train, &val);
        let _ = start;
        let (mae, rmse) = trainer.evaluate_grid(model.as_ref(), &dataset, &test);
        println!(
            "{:<16} {:>7} {:>10.2} {:>9.4} {:>9.4}",
            name,
            report.epochs_run,
            report.mean_epoch_seconds(),
            mae,
            rmse
        );
    }
}
