//! `serve_load` — closed-loop load generator for the `geotorch-serve`
//! subsystem.
//!
//! ```sh
//! cargo run --release -p geotorch-bench --bin serve_load -- [--quick] [--clients N] [--requests N]
//! ```
//!
//! Starts the same model twice — once with micro-batching disabled
//! (`max_batch = 1`, the one-forward-per-request baseline) and once with
//! the dynamic batcher on (`max_batch = 8`) — and drives each over real
//! HTTP with N concurrent clients. Reports throughput and p50/p95/p99
//! latency per configuration as a markdown table (also written to
//! `results/serve_load.md`), and exits non-zero unless the batched
//! configuration achieves strictly higher throughput.
//!
//! With `--overload` it instead drives waves of far more concurrent
//! requests than the admission bound, reporting the shed rate and the
//! admitted-request latency to `results/serve_overload.md`; it exits
//! non-zero if nothing was shed or any request saw a status other than
//! 200/429 — the CI chaos job's check that load-shedding actually
//! protects admitted traffic. The overload run also measures replica
//! sharding with a fixed-cost (sleep) model — independent of host core
//! count — and fails unless 4 replicas sustain at least 2x the
//! throughput of 1 replica at equal-or-lower p99.
//!
//! With `--storm` it opens thousands of idle connections that stall
//! mid-headers (a slow-loris swarm) and verifies that live `/predict`
//! and `/healthz` probes still answer promptly — the event-driven
//! front's reason to exist. Results go to `results/serve_storm.md`.
//!
//! With `--republish` it soaks the registry hot-swap path: closed-loop
//! clients hammer `/predict` while the main thread publishes several
//! fine-tuned checkpoints through `POST /models/<m>/publish`. Every
//! response must be a 200 carrying an `X-Model-Version` header naming
//! exactly one published manifest id (no dropped or erroneous requests,
//! ≥ 2 distinct versions observed). Results go to
//! `results/serve_republish.md`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::SeedableRng;

use geotorch_bench::{markdown_table, LatencySummary};
use geotorch_models::raster::SatCnn;
use geotorch_nn::{Module, Var};
use geotorch_serve::{BatchConfig, Registry, ServeConfig, ServeModel, Server};
use geotorch_tensor::{Device, Tensor};

const MODEL: &str = "satcnn";

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn registry() -> Registry {
    let mut registry = Registry::new();
    registry.register_classifier(MODEL, None, || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        SatCnn::new(3, 32, 32, 10, &mut rng)
    });
    registry
}

/// A model whose forward costs a fixed wall-clock sleep instead of CPU:
/// replica scaling measured with it is independent of host core count
/// (N sleeping replica threads overlap even on one core).
struct SleepModel {
    ms: u64,
}

impl Module for SleepModel {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }

    fn set_training(&self, _training: bool) {}
}

impl ServeModel for SleepModel {
    fn predict(&self, batch: &Var) -> Var {
        std::thread::sleep(Duration::from_millis(self.ms));
        batch.clone()
    }
}

/// One blocking HTTP POST over a fresh connection, keeping the whole
/// response: status, the `X-Model-Version` header if present, and the
/// body. `Err` means the request was dropped (connect/read failure) —
/// the republish soak counts those as failures.
fn post_full(
    addr: SocketAddr,
    path: &str,
    body: &str,
) -> Result<(u16, Option<String>, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {response:.60}"))?;
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .ok_or("response without header terminator")?;
    let version = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("x-model-version")
            .then(|| value.trim().to_string())
    });
    Ok((status, version, payload.to_string()))
}

/// One blocking HTTP POST over a fresh connection; returns the status.
fn post(addr: SocketAddr, path: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code")
}

struct RunResult {
    throughput: f64,
    latency: LatencySummary,
}

/// Drive `clients` closed-loop threads × `requests` requests against an
/// already-started server.
fn drive(addr: SocketAddr, path: &str, payload: &str, clients: usize, requests: usize) -> RunResult {
    let started = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(requests);
                    for _ in 0..requests {
                        let sent = Instant::now();
                        let status = post(addr, path, payload);
                        assert_eq!(status, 200, "request failed under load");
                        latencies.push(sent.elapsed().as_secs_f64());
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    RunResult {
        throughput: latencies.len() as f64 / wall,
        latency: LatencySummary::from_secs(&latencies),
    }
}

/// Drive `clients` threads × `requests` requests against a freshly
/// started server with the given batching limit.
fn run(max_batch: usize, clients: usize, requests: usize) -> RunResult {
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch,
            max_wait_ms: 2,
            device: Device::parallel(),
            // Closed-loop clients must never be shed in the throughput
            // comparison; admission control gets its own run.
            queue_bound: (clients * 4).max(64),
            replicas: 1,
        },
        http_workers: clients.max(1),
        enable_telemetry: false,
        default_deadline_ms: 60_000,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry(), config).expect("server starts");
    let addr = server.addr();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let sample = Tensor::rand_uniform(&[3, 32, 32], -1.0, 1.0, &mut rng);
    let payload = serde_json::to_string(&sample).expect("serialize sample");
    let path = format!("/predict/{MODEL}");

    // Warm up the kernel pool and the per-thread scratch space so the
    // timed window measures steady state.
    for _ in 0..2 {
        assert_eq!(post(addr, &path, &payload), 200, "warm-up request failed");
    }
    let result = drive(addr, &path, &payload, clients, requests);
    server.shutdown();
    result
}

/// Closed-loop throughput of a fixed-cost model served with `replicas`
/// replica threads.
fn run_replicas(replicas: usize, clients: usize, requests: usize) -> RunResult {
    let mut registry = Registry::new();
    registry.register("sleeper", None, || Box::new(SleepModel { ms: 8 }));
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 1,
            max_wait_ms: 0,
            device: Device::parallel(),
            queue_bound: (clients * 4).max(64),
            replicas,
        },
        http_workers: clients.max(1),
        enable_telemetry: false,
        default_deadline_ms: 60_000,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry, config).expect("server starts");
    let addr = server.addr();
    let payload =
        serde_json::to_string(&Tensor::from_vec(vec![0.5], &[1])).expect("serialize sample");
    for _ in 0..2 {
        assert_eq!(post(addr, "/predict/sleeper", &payload), 200, "warm-up failed");
    }
    let result = drive(addr, "/predict/sleeper", &payload, clients, requests);
    server.shutdown();
    result
}

/// Drive waves of `wave_size` one-shot requests against a server whose
/// admission bound is `bound`, recording every status and latency; then
/// measure replica-sharding scaling with the fixed-cost model.
fn run_overload(quick: bool) -> Result<String, String> {
    let bound = 8usize;
    let wave_size = 3 * bound;
    let waves = if quick { 3 } else { 8 };
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 2,
            device: Device::parallel(),
            queue_bound: bound,
            replicas: 1,
        },
        // Sockets must never be the bottleneck: admission control, not
        // accept capacity, has to do the shedding.
        http_workers: wave_size,
        enable_telemetry: false,
        default_deadline_ms: 60_000,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry(), config).expect("server starts");
    let addr = server.addr();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let sample = Tensor::rand_uniform(&[3, 32, 32], -1.0, 1.0, &mut rng);
    let payload = serde_json::to_string(&sample).expect("serialize sample");
    let path = format!("/predict/{MODEL}");
    for _ in 0..2 {
        post(addr, &path, &payload);
    }

    // Baseline: waves of exactly the bound, so the comparison includes
    // the same queueing pipeline without any shedding pressure.
    let fire_wave = |n: usize| -> Vec<(u16, f64)> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let payload = payload.as_str();
                    let path = path.as_str();
                    scope.spawn(move || {
                        let sent = Instant::now();
                        let status = post(addr, path, payload);
                        (status, sent.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        })
    };
    let baseline: Vec<f64> = (0..waves)
        .flat_map(|_| fire_wave(bound))
        .map(|(_, secs)| secs)
        .collect();
    let baseline_summary = LatencySummary::from_secs(&baseline);

    let outcomes: Vec<(u16, f64)> = (0..waves).flat_map(|_| fire_wave(wave_size)).collect();
    server.shutdown();

    let total = outcomes.len();
    let admitted: Vec<f64> = outcomes
        .iter()
        .filter(|(s, _)| *s == 200)
        .map(|(_, secs)| *secs)
        .collect();
    let shed = outcomes.iter().filter(|(s, _)| *s == 429).count();
    let other: Vec<u16> = outcomes
        .iter()
        .map(|(s, _)| *s)
        .filter(|s| *s != 200 && *s != 429)
        .collect();
    let admitted_summary = LatencySummary::from_secs(&admitted);
    let rows = vec![
        vec![
            format!("unloaded (waves of {bound})"),
            format!("{}", baseline.len()),
            "0.0%".to_string(),
            format!("{:.2}", baseline_summary.p50_ms),
            format!("{:.2}", baseline_summary.p99_ms),
        ],
        vec![
            format!("overload (waves of {wave_size}, bound {bound})"),
            format!("{}", admitted.len()),
            format!("{:.1}%", 100.0 * shed as f64 / total as f64),
            format!("{:.2}", admitted_summary.p50_ms),
            format!("{:.2}", admitted_summary.p99_ms),
        ],
    ];
    let table = markdown_table(
        &["scenario", "served", "shed rate", "admitted p50 ms", "admitted p99 ms"],
        &rows,
    );

    // Replica sharding: a fixed-cost model makes the comparison about
    // the routing layer, not the host's arithmetic throughput.
    let clients = 16;
    let requests = if quick { 8 } else { 25 };
    eprintln!("replica scaling: {clients} clients x {requests} requests, 1 vs 4 replicas ...");
    let one = run_replicas(1, clients, requests);
    let four = run_replicas(4, clients, requests);
    let scaling = four.throughput / one.throughput.max(1e-9);
    let replica_rows = vec![
        vec![
            "1 replica".to_string(),
            format!("{:.1}", one.throughput),
            format!("{:.2}", one.latency.p50_ms),
            format!("{:.2}", one.latency.p99_ms),
        ],
        vec![
            "4 replicas".to_string(),
            format!("{:.1}", four.throughput),
            format!("{:.2}", four.latency.p50_ms),
            format!("{:.2}", four.latency.p99_ms),
        ],
    ];
    let replica_table = markdown_table(
        &["replicas (8 ms fixed-cost model)", "req/s", "p50 ms", "p99 ms"],
        &replica_rows,
    );

    let cores = host_cores();
    let report = format!(
        "## Admission control under overload — shed rate and admitted latency\n\n{table}\n_{waves} waves; shed = HTTP 429 with Retry-After; every other request answered 200_\n\n## Replica sharding — least-loaded routing across model replicas\n\n{replica_table}\n_4-replica/1-replica speedup: {scaling:.2}x ({clients} closed-loop clients; host cores: {cores})_\n"
    );
    println!("{report}");
    std::fs::create_dir_all("results").ok();
    let report = format!("{report}{}", geotorch_bench::host_stamp());
    std::fs::write("results/serve_overload.md", &report).ok();

    if !other.is_empty() {
        return Err(format!(
            "overload produced statuses other than 200/429: {other:?}"
        ));
    }
    if shed == 0 {
        return Err(format!(
            "waves of {wave_size} against a bound of {bound} shed nothing — admission control is not engaging"
        ));
    }
    if admitted.is_empty() {
        return Err("overload admitted nothing — shedding everything protects no one".to_string());
    }
    if scaling < 2.0 {
        return Err(format!(
            "4 replicas sustained only {scaling:.2}x the 1-replica throughput (need >= 2x)"
        ));
    }
    if four.latency.p99_ms > one.latency.p99_ms {
        return Err(format!(
            "4-replica p99 regressed: {:.2} ms vs {:.2} ms with 1 replica",
            four.latency.p99_ms, one.latency.p99_ms
        ));
    }
    Ok(report)
}

/// The registry's seeded state with only the classifier-head bias
/// shifted — a fine-tune whose delta is one small tensor.
fn fine_tuned(delta: f32) -> Vec<Tensor> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let model = SatCnn::new(3, 32, 32, 10, &mut rng);
    let mut state = model.state_dict();
    let last = state.len() - 1;
    state[last] = state[last].add_scalar(delta);
    state
}

/// Serialise a full state dict as a classic named checkpoint — the body
/// `POST /models/<m>/publish` accepts.
fn checkpoint_body(state: &[Tensor], tag: usize) -> String {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let model = SatCnn::new(3, 32, 32, 10, &mut rng);
    model.load_state_dict(state).expect("state dict fits the model");
    let path = std::env::temp_dir().join(format!(
        "geotorch_republish_{}_{tag}.json",
        std::process::id()
    ));
    geotorch_core::checkpoint::save_named(&model, MODEL, &path).expect("serialise checkpoint");
    let body = std::fs::read_to_string(&path).expect("read checkpoint");
    std::fs::remove_file(&path).ok();
    body
}

/// Pull the manifest id out of a publish response
/// (`{"model": ..., "id": "...", ...}`).
fn extract_id(body: &str) -> Option<String> {
    let start = body.find("\"id\":\"")? + "\"id\":\"".len();
    let rest = &body[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Soak the hot-swap path: closed-loop clients drive `/predict` while
/// the main thread publishes `republishes` fine-tuned checkpoints. No
/// request may be dropped or answered with anything but 200, and every
/// response must name exactly one known model version.
fn run_republish(quick: bool) -> Result<String, String> {
    let republishes = if quick { 3 } else { 5 };
    let clients = 6;
    let store = std::env::temp_dir().join(format!(
        "geotorch_serve_republish_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&store).ok();
    let mut registry = registry();
    assert!(registry.enable_sync(MODEL, store.clone()), "model registered");
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 2,
            device: Device::parallel(),
            queue_bound: 256,
            replicas: 2,
        },
        http_workers: clients + 2,
        enable_telemetry: false,
        default_deadline_ms: 60_000,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry, config).expect("server starts");
    let addr = server.addr();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let sample = Tensor::rand_uniform(&[3, 32, 32], -1.0, 1.0, &mut rng);
    let payload = serde_json::to_string(&sample).expect("serialize sample");
    let path = format!("/predict/{MODEL}");

    let (status, initial, _) = post_full(addr, &path, &payload).map_err(|e| format!("warm-up: {e}"))?;
    if status != 200 {
        return Err(format!("warm-up request got status {status}"));
    }
    let initial = initial.ok_or("warm-up response carried no X-Model-Version header")?;

    // Pre-serialise every checkpoint body so the publish cadence under
    // load is not dominated by JSON encoding.
    let bodies: Vec<String> = (1..=republishes)
        .map(|k| checkpoint_body(&fine_tuned(k as f32 * 0.4), k))
        .collect();

    eprintln!(
        "republish soak: {clients} closed-loop clients, {republishes} publishes mid-load ..."
    );
    let stop = AtomicBool::new(false);
    let publish_path = format!("/models/{MODEL}/publish");
    let (results, published): (Vec<_>, Vec<String>) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let (stop, payload, path) = (&stop, payload.as_str(), path.as_str());
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        seen.push(post_full(addr, path, payload));
                    }
                    seen
                })
            })
            .collect();
        // Publishes interleave with the load: each one diffs against the
        // store head and hot-swaps both replicas between batches.
        let mut published = Vec::with_capacity(republishes);
        std::thread::sleep(Duration::from_millis(100));
        for body in &bodies {
            match post_full(addr, &publish_path, body) {
                Ok((200, _, response)) => match extract_id(&response) {
                    Some(id) => published.push(id),
                    None => published.push(format!("unparsed: {response:.60}")),
                },
                Ok((status, _, response)) => {
                    published.push(format!("publish failed: {status} {response:.60}"));
                }
                Err(e) => published.push(format!("publish dropped: {e}")),
            }
            std::thread::sleep(Duration::from_millis(150));
        }
        stop.store(true, Ordering::Relaxed);
        let results = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        (results, published)
    });
    server.shutdown();
    std::fs::remove_dir_all(&store).ok();

    // Every publish must have gone through (a failed one pushed an
    // error string instead of a 16-hex manifest id).
    if let Some(bad) = published.iter().find(|id| !id.chars().all(|c| c.is_ascii_hexdigit())) {
        return Err(bad.clone());
    }
    let mut known: Vec<String> = vec![initial.clone()];
    known.extend(published.iter().cloned());

    let total = results.len();
    let mut dropped = Vec::new();
    let mut bad_status = Vec::new();
    let mut unversioned = 0usize;
    let mut counts: Vec<(String, usize)> = known.iter().map(|id| (id.clone(), 0)).collect();
    let mut unknown = Vec::new();
    for outcome in &results {
        match outcome {
            Err(e) => dropped.push(e.clone()),
            Ok((status, _, body)) if *status != 200 => {
                bad_status.push(format!("{status}: {body:.60}"));
            }
            Ok((_, None, _)) => unversioned += 1,
            Ok((_, Some(version), _)) => {
                match counts.iter_mut().find(|(id, _)| id == version) {
                    Some((_, n)) => *n += 1,
                    None => unknown.push(version.clone()),
                }
            }
        }
    }
    let distinct = counts.iter().filter(|(_, n)| *n > 0).count();

    let rows: Vec<Vec<String>> = counts
        .iter()
        .enumerate()
        .map(|(i, (id, n))| {
            let label = if i == 0 {
                "seed head".to_string()
            } else {
                format!("publish #{i}")
            };
            vec![label, id.clone(), format!("{n}")]
        })
        .collect();
    let table = markdown_table(&["version", "manifest id", "responses"], &rows);
    let report = format!(
        "## Hot-swap soak — republishing under live load\n\n{table}\n_{total} responses from {clients} closed-loop clients across {republishes} mid-load publishes; every response answered 200 and named exactly one model version ({distinct} distinct versions observed)_\n"
    );
    println!("{report}");
    std::fs::create_dir_all("results").ok();
    let report = format!("{report}{}", geotorch_bench::host_stamp());
    std::fs::write("results/serve_republish.md", &report).ok();

    if !dropped.is_empty() {
        return Err(format!("{} requests dropped (first: {})", dropped.len(), dropped[0]));
    }
    if !bad_status.is_empty() {
        return Err(format!(
            "{} non-200 responses under republish (first: {})",
            bad_status.len(),
            bad_status[0]
        ));
    }
    if unversioned > 0 {
        return Err(format!("{unversioned} responses carried no X-Model-Version header"));
    }
    if !unknown.is_empty() {
        return Err(format!(
            "responses named versions that were never published: {unknown:?}"
        ));
    }
    if distinct < 2 {
        return Err(format!(
            "only {distinct} distinct version(s) observed across {republishes} publishes — the swap never landed mid-load"
        ));
    }
    Ok(report)
}

/// A slow-loris swarm: `idle` connections stall mid-headers while live
/// probes measure whether anyone else still gets served.
fn run_storm(quick: bool) -> Result<String, String> {
    let idle = if quick { 500 } else { 2000 };
    let probes = if quick { 25 } else { 100 };
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 2,
            device: Device::parallel(),
            queue_bound: 64,
            replicas: 1,
        },
        http_workers: 4,
        enable_telemetry: false,
        default_deadline_ms: 60_000,
        // Long enough that the swarm outlives the whole probe window.
        socket_timeout_ms: 60_000,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry(), config).expect("server starts");
    let addr = server.addr();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let sample = Tensor::rand_uniform(&[3, 32, 32], -1.0, 1.0, &mut rng);
    let payload = serde_json::to_string(&sample).expect("serialize sample");
    let path = format!("/predict/{MODEL}");
    assert_eq!(post(addr, &path, &payload), 200, "warm-up request failed");

    eprintln!("opening {idle} stalled connections ...");
    let mut swarm = Vec::with_capacity(idle);
    for i in 0..idle {
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => return Err(format!("stalled connection {i} failed to open: {e}")),
        };
        // A partial request line, then silence: the connection parks in
        // the event loop's buffer, never reaching a responder thread.
        stream.write_all(b"POST /predict/").ok();
        swarm.push(stream);
    }

    let mut latencies = Vec::with_capacity(probes);
    for i in 0..probes {
        let sent = Instant::now();
        let status = if i % 5 == 0 {
            // Every fifth probe checks the health endpoint instead.
            let mut stream = TcpStream::connect(addr).map_err(|e| format!("probe connect: {e}"))?;
            stream
                .write_all(
                    format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                        .as_bytes(),
                )
                .ok();
            let mut response = String::new();
            stream.read_to_string(&mut response).ok();
            response
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0)
        } else {
            post(addr, &path, &payload)
        };
        if status != 200 {
            return Err(format!("probe {i} got status {status} under the storm"));
        }
        latencies.push(sent.elapsed().as_secs_f64());
    }
    drop(swarm);
    server.shutdown();

    let summary = LatencySummary::from_secs(&latencies);
    let cores = host_cores();
    let table = markdown_table(
        &["stalled connections", "live probes", "p50 ms", "p99 ms"],
        &[vec![
            format!("{idle}"),
            format!("{probes}"),
            format!("{:.2}", summary.p50_ms),
            format!("{:.2}", summary.p99_ms),
        ]],
    );
    let report = format!(
        "## Slow-loris storm — live traffic under {idle} stalled connections\n\n{table}\n_every probe answered 200; host cores: {cores}_\n"
    );
    println!("{report}");
    std::fs::create_dir_all("results").ok();
    let report = format!("{report}{}", geotorch_bench::host_stamp());
    std::fs::write("results/serve_storm.md", &report).ok();
    if summary.p99_ms > 2_000.0 {
        return Err(format!(
            "probe p99 {:.0} ms under the storm — stalled connections are delaying live traffic",
            summary.p99_ms
        ));
    }
    Ok(report)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--overload") {
        if let Err(msg) = run_overload(quick) {
            eprintln!("FAIL: {msg}");
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "--storm") {
        if let Err(msg) = run_storm(quick) {
            eprintln!("FAIL: {msg}");
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "--republish") {
        if let Err(msg) = run_republish(quick) {
            eprintln!("FAIL: {msg}");
            std::process::exit(1);
        }
        return;
    }
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let clients = flag("--clients", 8);
    let requests = flag("--requests", if quick { 12 } else { 40 });

    eprintln!("serve_load: {clients} clients x {requests} requests per configuration");
    let configs = [("no batching (max_batch=1)", 1), ("micro-batching (max_batch=8)", 8)];
    let results: Vec<RunResult> = configs
        .iter()
        .map(|&(label, max_batch)| {
            eprintln!("running {label} ...");
            run(max_batch, clients, requests)
        })
        .collect();

    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&results)
        .map(|(&(label, _), r)| {
            vec![
                label.to_string(),
                format!("{:.1}", r.throughput),
                format!("{:.2}", r.latency.p50_ms),
                format!("{:.2}", r.latency.p95_ms),
                format!("{:.2}", r.latency.p99_ms),
                format!("{:.2}", r.latency.mean_ms),
            ]
        })
        .collect();
    let table = markdown_table(
        &["configuration", "req/s", "p50 ms", "p95 ms", "p99 ms", "mean ms"],
        &rows,
    );
    let speedup = results[1].throughput / results[0].throughput.max(1e-9);
    let cores = host_cores();
    let report = format!(
        "## Serving throughput — dynamic micro-batching vs per-request forwards\n\n{table}\n_batched/unbatched speedup: {speedup:.2}x ({clients} clients, {requests} requests each; host cores: {cores})_\n"
    );
    println!("{report}");
    std::fs::create_dir_all("results").ok();
    let report = format!("{report}{}", geotorch_bench::host_stamp());
    std::fs::write("results/serve_load.md", &report).ok();

    if results[1].throughput <= results[0].throughput {
        eprintln!(
            "FAIL: micro-batching must beat the per-request baseline ({:.1} <= {:.1} req/s)",
            results[1].throughput, results[0].throughput
        );
        std::process::exit(1);
    }
}
