//! `alloc_bench` — A/B comparison of the pooled tensor allocator against
//! the seed behaviour (exact-capacity fresh allocations, no recycling).
//!
//! ```sh
//! cargo run --release -p geotorch-bench --bin alloc_bench -- [--quick]
//! ```
//!
//! Two workloads, each run once with `pool::set_enabled(false)` (the
//! pre-pool allocator) and once with the pool on:
//!
//! 1. **Training** — a full epoch of the §V-C classifier protocol;
//!    reports seconds/epoch and samples/s.
//! 2. **Serving** — a steady-state stream of no-grad batched forwards
//!    (the work `geotorch-serve` executes per micro-batch); reports
//!    per-forward p50/p95 latency.
//!
//! Writes the table to `results/alloc_bench.md` and exits non-zero if
//! the pooled configuration loses on training throughput or serve p50.

use std::time::Instant;

use rand::SeedableRng;

use geotorch_bench::{markdown_table, percentile};
use geotorch_core::Trainer;
use geotorch_datasets::{shuffled_split, RasterDataset};
use geotorch_models::raster::SatCnn;
use geotorch_models::RasterClassifier;
use geotorch_nn::Var;
use geotorch_tensor::{pool, Device, Tensor};

struct TrainResult {
    epoch_seconds: f64,
    samples_per_sec: f64,
    pool_misses: u64,
}

fn train_epochs(epochs: usize, pooled: bool) -> TrainResult {
    pool::set_enabled(pooled);
    pool::clear();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dataset = RasterDataset::classification("alloc-bench", 3, 24, 24, 4, 48, 0);
    let model = SatCnn::new(3, 24, 24, 4, &mut rng);
    let (train, val, _) = shuffled_split(dataset.len(), 0);
    let mut config = geotorch_bench::paper_train_config(epochs, 0);
    config.batch_size = 8;
    config.early_stopping_patience = None;
    config.device = Device::Cpu;
    // One untimed epoch warms the pool (a no-op when disabled) so both
    // configurations measure steady state.
    let mut warm = config.clone();
    warm.epochs = 1;
    Trainer::new(warm).fit_classifier(&model, &dataset, &train, &val);
    let before = pool::stats();
    let report = Trainer::new(config).fit_classifier(&model, &dataset, &train, &val);
    let misses = pool::stats().misses - before.misses;
    TrainResult {
        epoch_seconds: report.mean_epoch_seconds(),
        samples_per_sec: report.mean_samples_per_sec(),
        pool_misses: misses,
    }
}

struct ServeResult {
    p50_ms: f64,
    p95_ms: f64,
    forwards_per_sec: f64,
    pool_misses: u64,
}

fn serve_forwards(rounds: usize, pooled: bool) -> ServeResult {
    pool::set_enabled(pooled);
    pool::clear();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let model = SatCnn::new(3, 32, 32, 10, &mut rng);
    let batch = Tensor::rand_uniform(&[8, 3, 32, 32], -1.0, 1.0, &mut rng);
    let forward = || {
        geotorch_nn::no_grad(|| model.forward(&Var::constant(batch.clone()), None).value())
    };
    for _ in 0..4 {
        let _ = forward();
    }
    let before = pool::stats();
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let sent = Instant::now();
        let out = forward();
        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
        assert_eq!(out.shape(), &[8, 10]);
    }
    let wall = started.elapsed().as_secs_f64();
    let misses = pool::stats().misses - before.misses;
    ServeResult {
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        forwards_per_sec: rounds as f64 / wall,
        pool_misses: misses,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (epochs, rounds) = if quick { (1, 40) } else { (3, 200) };

    eprintln!("alloc_bench: training {epochs} epoch(s) per configuration ...");
    let train_seed = train_epochs(epochs, false);
    let train_pool = train_epochs(epochs, true);
    eprintln!("alloc_bench: {rounds} serve forwards per configuration ...");
    let serve_seed = serve_forwards(rounds, false);
    let serve_pool = serve_forwards(rounds, true);
    // Leave the process-global pool in its default state.
    pool::set_enabled(true);

    let train_rows = vec![
        vec![
            "seed allocator".to_string(),
            format!("{:.3}", train_seed.epoch_seconds),
            format!("{:.1}", train_seed.samples_per_sec),
            train_seed.pool_misses.to_string(),
        ],
        vec![
            "pooled + in-place".to_string(),
            format!("{:.3}", train_pool.epoch_seconds),
            format!("{:.1}", train_pool.samples_per_sec),
            train_pool.pool_misses.to_string(),
        ],
    ];
    let serve_rows = vec![
        vec![
            "seed allocator".to_string(),
            format!("{:.3}", serve_seed.p50_ms),
            format!("{:.3}", serve_seed.p95_ms),
            format!("{:.1}", serve_seed.forwards_per_sec),
            serve_seed.pool_misses.to_string(),
        ],
        vec![
            "pooled + in-place".to_string(),
            format!("{:.3}", serve_pool.p50_ms),
            format!("{:.3}", serve_pool.p95_ms),
            format!("{:.1}", serve_pool.forwards_per_sec),
            serve_pool.pool_misses.to_string(),
        ],
    ];
    let speedup = train_pool.samples_per_sec / train_seed.samples_per_sec.max(1e-9);
    let p50_ratio = serve_seed.p50_ms / serve_pool.p50_ms.max(1e-9);
    let report = format!(
        "## Pooled tensor storage vs seed allocator\n\n### Training ({epochs} epoch(s), SatCnn 24x24, batch 8)\n\n{}\n\n### Serving steady state ({rounds} no-grad forwards, batch 8, 32x32)\n\n{}\n\n_training speedup: {speedup:.2}x samples/s; serve p50 improvement: {p50_ratio:.2}x_\n",
        markdown_table(
            &["allocator", "s/epoch", "samples/s", "pool misses"],
            &train_rows
        ),
        markdown_table(
            &["allocator", "p50 ms", "p95 ms", "fwd/s", "pool misses"],
            &serve_rows
        ),
    );
    println!("{report}");
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/alloc_bench.md", &report).ok();

    if train_pool.samples_per_sec <= train_seed.samples_per_sec
        || serve_pool.p50_ms >= serve_seed.p50_ms
    {
        eprintln!(
            "FAIL: pooled configuration must beat the seed allocator \
             (train {:.1} vs {:.1} samples/s, serve p50 {:.3} vs {:.3} ms)",
            train_pool.samples_per_sec,
            train_seed.samples_per_sec,
            serve_pool.p50_ms,
            serve_seed.p50_ms
        );
        std::process::exit(1);
    }
}
