//! `repro` — regenerate every table and figure of the GeoTorchAI paper's
//! evaluation (§V) on the GeoTorch-RS reproduction.
//!
//! ```sh
//! cargo run --release -p geotorch-bench --bin repro -- [--quick] [--threads N] [--profile] <experiment>
//! ```
//!
//! Experiments: `fig8`, `table4`, `table5`, `table6`, `table7`, `fig9`,
//! `table8`, or `all`. `--quick` shrinks scales for a fast smoke run.
//! `--threads N` pins the Fig. 9 "GPU" (data-parallel) runs to a
//! `Device::Parallel(N)` worker-pool share instead of every core.
//! `--profile` turns on the telemetry layer and dumps a per-kernel time
//! breakdown after each experiment: a markdown section appended to the
//! report plus machine-readable `results/<name>.profile.json`.
//!
//! Results print as markdown and are appended to `results/<name>.md`.

use std::time::Instant;

use rand::SeedableRng;

use geotorch_bench::{
    make_grid_model, markdown_table, mean_and_spread, paper_train_config, set_representation,
    timing_cell, CountingAllocator, GRID_MODEL_NAMES,
};
use geotorch_core::Trainer;
use geotorch_datasets::grid::GridDatasetBuilder;
use geotorch_datasets::synth::{TripGenerator, WeatherField, WeatherVariable};
use geotorch_datasets::{chronological_split, shuffled_split, RasterDataset, StGridDataset};
use geotorch_models::raster::{DeepSatV2, Fcn, SatCnn, UNet, UNetPlusPlus};
use geotorch_models::{RasterClassifier, Segmenter};
use geotorch_preprocess::geopandas_like::get_st_grid_dataframe_naive;
use geotorch_preprocess::raster_processing::{RasterBatch, RasterProcessing};
use geotorch_preprocess::st_manager::{trips_dataframe, StGridConfig, StManager};
use geotorch_raster::transforms::{AppendNormalizedDifferenceIndex, Compose};
use geotorch_tensor::Device;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let profile = args.iter().any(|a| a == "--profile");
    if profile {
        geotorch_telemetry::set_enabled(true);
    }
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                })
        });
    let mut skip_next = false;
    let chosen: Vec<&str> = args
        .iter()
        .filter_map(|s| {
            if skip_next {
                skip_next = false;
                return None;
            }
            if s == "--threads" {
                skip_next = true;
                return None;
            }
            (s != "--quick" && s != "--profile").then_some(s.as_str())
        })
        .collect();
    let all = [
        "fig8",
        "fig8_stream",
        "table4",
        "table5",
        "table6",
        "table7",
        "fig9",
        "table8",
    ];
    let run: Vec<&str> = if chosen.is_empty() || chosen.contains(&"all") {
        all.to_vec()
    } else {
        chosen
    };
    std::fs::create_dir_all("results").ok();
    for experiment in run {
        if profile {
            geotorch_telemetry::reset();
        }
        let start = Instant::now();
        let output = match experiment {
            "fig8" => fig8(quick),
            "fig8_stream" => fig8_stream(quick),
            "table4" => table4(quick),
            "table5" => table5(quick),
            "table6" => table6(quick),
            "table7" => table7(quick),
            "fig9" => fig9(quick, threads),
            "table8" => table8(quick),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        let elapsed = start.elapsed().as_secs_f64();
        let mut report = format!(
            "{output}\n_(harness time: {elapsed:.1}s, quick={quick})_\n{}",
            geotorch_bench::host_stamp()
        );
        if profile {
            report.push_str(&profile_section(experiment));
        }
        println!("{report}");
        std::fs::write(format!("results/{experiment}.md"), &report).ok();
    }
}

/// Dump the telemetry snapshot for one experiment: JSON next to the
/// markdown report, plus a rendered breakdown with a kernel-coverage
/// summary (how much of the instrumented training time the tensor/nn
/// kernels account for).
fn profile_section(experiment: &str) -> String {
    let json = geotorch_telemetry::snapshot_json();
    std::fs::write(format!("results/{experiment}.profile.json"), &json).ok();
    let stats = geotorch_telemetry::snapshot();
    let kernel_ns: u64 = stats
        .iter()
        .filter(|s| s.name.starts_with("tensor.") || s.name.starts_with("nn."))
        .map(|s| s.self_ns)
        .sum();
    let epoch_ns: u64 = stats
        .iter()
        .filter(|s| s.name == "core.trainer.epoch")
        .map(|s| s.total_ns)
        .sum();
    let coverage = if epoch_ns > 0 {
        format!(
            "Kernel self-time covers {:.0}% of instrumented epoch wall-clock \
             (kernels also run in validation, so >100% is possible).",
            100.0 * kernel_ns as f64 / epoch_ns as f64
        )
    } else {
        "No trainer epochs ran in this experiment.".to_string()
    };
    format!(
        "\n### Profile (`--profile`)\n\n{}\n{coverage}\n\nMachine-readable copy: `results/{experiment}.profile.json`.\n",
        geotorch_telemetry::snapshot_markdown()
    )
}

// ---------------------------------------------------------------- Fig. 8

/// Figure 8: spatiotemporal tensor preparation — elapsed time and peak
/// memory, GeoTorchAI's partitioned engine vs the naive single-threaded
/// GeoPandas-like baseline, over growing record counts.
///
/// Paper sizes (1.4 M – 250 M trips) are scaled ÷100 so the sweep runs on
/// a laptop; the scaling *shape* is the reproduction target.
fn fig8(quick: bool) -> String {
    let sizes: Vec<usize> = if quick {
        vec![14_000, 50_000, 140_000]
    } else {
        vec![14_000, 140_000, 1_000_000, 2_500_000]
    };
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut rows = Vec::new();
    for &n in &sizes {
        let generator = TripGenerator::nyc_like(42);
        let trips = generator.generate(n);
        let (min_lon, min_lat, max_lon, max_lat) = generator.extent();
        let extent = geotorch_dataframe::Envelope::new(min_lon, min_lat, max_lon, max_lat);
        let config = StGridConfig {
            partitions_x: 12,
            partitions_y: 16,
            step_duration_sec: 1800,
            extent: Some(extent),
        };
        let lats: Vec<f64> = trips.iter().map(|t| t.pickup_lat).collect();
        let lons: Vec<f64> = trips.iter().map(|t| t.pickup_lon).collect();
        let timestamps: Vec<i64> = trips.iter().map(|t| t.timestamp).collect();
        drop(trips);

        // GeoTorchAI: partitioned, parallel.
        let df = trips_dataframe(lats.clone(), lons.clone(), timestamps.clone())
            .expect("trip columns")
            .repartition(threads * 2)
            .expect("repartition");
        let base = ALLOC.reset_peak();
        let start = Instant::now();
        let (tensor, _) =
            StManager::get_st_grid_array(&df, "lat", "lon", "ts", &config).expect("fast pipeline");
        let fast_time = start.elapsed().as_secs_f64();
        let fast_mem = ALLOC.peak().saturating_sub(base);
        let fast_total = tensor.sum();
        drop(tensor);
        drop(df);

        // Baseline: naive single-threaded materialising pipeline.
        let df = trips_dataframe(lats, lons, timestamps).expect("trip columns");
        let base = ALLOC.reset_peak();
        let start = Instant::now();
        let naive = get_st_grid_dataframe_naive(&df, "lat", "lon", "ts", &config)
            .expect("naive pipeline");
        let naive_time = start.elapsed().as_secs_f64();
        let naive_mem = ALLOC.peak().saturating_sub(base);
        let naive_total = naive.to_tensor().expect("dense tensor").sum();
        assert_eq!(fast_total, naive_total, "engines must agree on the result");

        rows.push(vec![
            format!("{n}"),
            format!("{fast_time:.3}"),
            format!("{naive_time:.3}"),
            format!("{:.1}x", naive_time / fast_time.max(1e-9)),
            format!("{:.1}", fast_mem as f64 / 1e6),
            format!("{:.1}", naive_mem as f64 / 1e6),
        ]);
    }
    format!(
        "## Figure 8 — spatiotemporal tensor preparation (GeoTorchAI vs GeoPandas-like baseline)\n\n\
         Workload: synthetic NYC-like taxi trips → 12×16 grid, 30-min slots. `{threads}` worker threads.\n\n{}",
        markdown_table(
            &["records", "geotorch time (s)", "baseline time (s)", "speedup", "geotorch peak MB", "baseline peak MB"],
            &rows
        )
    )
}

// -------------------------------------------------------- Fig. 8 stream

/// Streaming Fig. 8: the same synthetic-trip workload pushed through the
/// spill-to-disk → prefetching loader → K-replica trainer pipeline.
/// Trips are generated in chunks and spilled immediately, so peak memory
/// is one chunk + the prefetch queue regardless of total row count —
/// quick mode streams 131K rows, full mode 100M.
fn fig8_stream(quick: bool) -> String {
    let (rows_total, chunk_rows, epochs) = if quick {
        (131_072, 16_384, 2)
    } else {
        (100_000_000, 1_000_000, 1)
    };
    let batch_size = 512;
    let dir = std::env::temp_dir().join(format!("geotorch-fig8-stream-{}", std::process::id()));

    let pool_before = geotorch_tensor::pool::stats().high_water_bytes;
    let spill_start = Instant::now();
    let store = std::sync::Arc::new(geotorch_bench::stream::spill_trips(
        &dir, rows_total, chunk_rows,
    ));
    let spill_secs = spill_start.elapsed().as_secs_f64();
    let spilled_mb = store.spilled_bytes() as f64 / 1e6;

    let mut rows = Vec::new();
    let mut base_sps = 0.0;
    for &k in &[1usize, 2, 4] {
        let report = geotorch_bench::stream::train_streamed(&store, k, epochs, batch_size)
            .expect("streamed training");
        let sps = geotorch_bench::stream::mean_samples_per_sec(&report);
        if k == 1 {
            base_sps = sps;
        }
        rows.push(vec![
            format!("{k}"),
            format!("{sps:.0}"),
            format!("{:.2}x", sps / base_sps.max(1e-9)),
            format!("{:.4}", report.train_losses.last().copied().unwrap_or(f32::NAN)),
            format!("{:.1}", report.pool_high_water_bytes as f64 / 1e6),
        ]);
    }
    let pool_after = geotorch_tensor::pool::stats().high_water_bytes;
    drop(store);

    format!(
        "## Figure 8 (streaming) — spill-to-disk → prefetch loader → K-replica trainer\n\n\
         Workload: {rows_total} synthetic NYC-like trips, generated and spilled in \
         {chunk_rows}-row chunks ({spilled_mb:.1} MB on disk, {spill_secs:.1}s), then streamed \
         through `SpillBatchStream → PrefetchLoader(depth 2) → fit_stream` for {epochs} epoch(s) \
         at batch {batch_size}. Pool high-water grew {:.1} MB over the whole sweep — bounded by \
         chunk + queue, not dataset size.\n\n{}",
        (pool_after.saturating_sub(pool_before)) as f64 / 1e6,
        markdown_table(
            &["replicas", "samples/s", "speedup vs K=1", "final train loss", "pool high-water MB"],
            &rows
        )
    )
}

// ------------------------------------------------------------- Table IV

#[allow(clippy::type_complexity)]
fn table4(quick: bool) -> String {
    let days = if quick { 9 } else { 14 };
    let seeds: Vec<u64> = if quick { vec![0] } else { vec![0, 1] };
    let datasets: Vec<(&str, Box<dyn Fn(u64) -> StGridDataset>)> = vec![
        (
            "BikeNYC-DeepSTN",
            Box::new(move |s| StGridDataset::bike_nyc_deepstn(days, s)),
        ),
        (
            "TaxiBJ21",
            Box::new(move |s| StGridDataset::taxi_bj21(days.min(10), s)),
        ),
        (
            "YellowTrip-NYC",
            Box::new(move |s| StGridDataset::yellowtrip_nyc(days.min(10), s)),
        ),
    ];
    grid_model_table(
        "Table IV — traffic prediction (MAE / RMSE, normalised units)",
        &datasets,
        &seeds,
        quick,
    )
}

// -------------------------------------------------------------- Table V

#[allow(clippy::type_complexity)]
fn table5(quick: bool) -> String {
    let days = if quick { 9 } else { 14 };
    // Weather grids run at 16×32 (half the paper's 32×64 per axis) to
    // keep ConvLSTM training tractable on CPU; the dynamics are
    // scale-free.
    let weather = move |variable: WeatherVariable, name: &'static str, seed: u64| {
        let raw = WeatherField::new(variable, seed).with_grid(16, 32).generate(days * 24);
        GridDatasetBuilder::new(raw).name(name).steps_per_day(24).build()
    };
    let seeds: Vec<u64> = if quick { vec![0] } else { vec![0, 1] };
    let datasets: Vec<(&str, Box<dyn Fn(u64) -> StGridDataset>)> = vec![
        (
            "Temperature",
            Box::new(move |s| weather(WeatherVariable::Temperature, "Temperature", s)),
        ),
        (
            "TotalPrecipitation",
            Box::new(move |s| {
                weather(WeatherVariable::TotalPrecipitation, "TotalPrecipitation", s)
            }),
        ),
        (
            "TotalCloudCover",
            Box::new(move |s| weather(WeatherVariable::TotalCloudCover, "TotalCloudCover", s)),
        ),
    ];
    grid_model_table(
        "Table V — weather forecasting (MAE / RMSE, normalised units)",
        &datasets,
        &seeds,
        quick,
    )
}

/// Shared harness for Tables IV and V: every grid model on every dataset,
/// averaged over seeds, reported as `mean ± spread`.
#[allow(clippy::type_complexity)]
fn grid_model_table(
    title: &str,
    datasets: &[(&str, Box<dyn Fn(u64) -> StGridDataset>)],
    seeds: &[u64],
    quick: bool,
) -> String {
    let mut rows = Vec::new();
    for (dataset_name, make_dataset) in datasets {
        let mut mae_cells = Vec::new();
        let mut rmse_cells = Vec::new();
        for model_name in GRID_MODEL_NAMES {
            let mut maes = Vec::new();
            let mut rmses = Vec::new();
            for &seed in seeds {
                let mut dataset = make_dataset(seed);
                set_representation(&mut dataset, model_name);
                let (_, c, h, w) = dataset.dims();
                let model = make_grid_model(model_name, c, h, w, seed.wrapping_add(7));
                let epochs = match (model_name, quick) {
                    (_, true) => 6,
                    ("ConvLSTM", false) => 12,
                    _ => 40,
                };
                let trainer = Trainer::new(paper_train_config(epochs, seed));
                let (train, val, test) = chronological_split(dataset.len());
                trainer.fit_grid(model.as_ref(), &dataset, &train, &val);
                let (mae, rmse) = trainer.evaluate_grid(model.as_ref(), &dataset, &test);
                maes.push(mae);
                rmses.push(rmse);
            }
            let (m_mean, m_spread) = mean_and_spread(&maes);
            let (r_mean, r_spread) = mean_and_spread(&rmses);
            mae_cells.push(format!("{m_mean:.4}±{m_spread:.4}"));
            rmse_cells.push(format!("{r_mean:.4}±{r_spread:.4}"));
        }
        let mut mae_row = vec![dataset_name.to_string(), "MAE".to_string()];
        mae_row.extend(mae_cells);
        rows.push(mae_row);
        let mut rmse_row = vec![String::new(), "RMSE".to_string()];
        rmse_row.extend(rmse_cells);
        rows.push(rmse_row);
    }
    let mut headers = vec!["dataset", "metric"];
    headers.extend(GRID_MODEL_NAMES);
    format!("## {title}\n\n{}", markdown_table(&headers, &rows))
}

// ------------------------------------------------------------- Table VI

fn table6(quick: bool) -> String {
    let per_class = if quick { 8 } else { 30 };
    let scenes = if quick { 24 } else { 64 };
    let scene_size = 32;
    let seeds: Vec<u64> = if quick { vec![0] } else { vec![0, 1, 2] };
    let epochs = if quick { 6 } else { 30 };
    let mut rows = Vec::new();

    // Classification: DeepSAT V2 and SatCNN on EuroSAT and SAT-6.
    for dataset_name in ["EuroSAT", "SAT6"] {
        for model_name in ["DeepSAT V2", "SatCNN"] {
            let mut accs = Vec::new();
            for &seed in &seeds {
                let dataset = match dataset_name {
                    // EuroSAT at 32×32 (paper: 64×64) keeps the 13-band,
                    // 10-class structure at laptop scale.
                    "EuroSAT" => RasterDataset::classification(
                        "EuroSAT", 13, 32, 32, 10, per_class, seed,
                    ),
                    _ => RasterDataset::sat6(per_class * 2, seed),
                };
                let dataset = if model_name == "DeepSAT V2" {
                    dataset.with_additional_features()
                } else {
                    dataset
                };
                let (h, w) = dataset.image_shape();
                let bands = dataset.effective_bands();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(13));
                let model: Box<dyn RasterClassifier> = if model_name == "DeepSAT V2" {
                    Box::new(DeepSatV2::new(
                        bands,
                        h,
                        w,
                        dataset.num_classes(),
                        dataset.feature_len(),
                        &mut rng,
                    ))
                } else {
                    Box::new(SatCnn::new(bands, h, w, dataset.num_classes(), &mut rng))
                };
                let mut config = paper_train_config(epochs, seed);
                config.learning_rate = 2e-3;
                config.batch_size = 8;
                config.gradient_clip = Some(5.0);
                config.early_stopping_patience = Some(8);
                let trainer = Trainer::new(config);
                let (train, val, test) = shuffled_split(dataset.len(), seed);
                trainer.fit_classifier(model.as_ref(), &dataset, &train, &val);
                accs.push(trainer.evaluate_classifier(model.as_ref(), &dataset, &test) * 100.0);
            }
            let (mean, spread) = mean_and_spread(&accs);
            rows.push(vec![
                model_name.to_string(),
                dataset_name.to_string(),
                "Classification".to_string(),
                format!("{mean:.2}±{spread:.2}%"),
            ]);
        }
    }

    // Segmentation: UNet, FCN, UNet++ on 38-Cloud.
    for model_name in ["UNet", "FCN", "UNet++"] {
        let mut accs = Vec::new();
        for &seed in &seeds {
            let dataset = RasterDataset::cloud38(scenes, scene_size, seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(29));
            let model: Box<dyn Segmenter> = match model_name {
                "UNet" => Box::new(UNet::new(4, 1, 4, &mut rng)),
                "FCN" => Box::new(Fcn::new(4, 1, 4, &mut rng)),
                _ => Box::new(UNetPlusPlus::new(4, 1, 4, &mut rng)),
            };
            let mut config = paper_train_config(epochs, seed);
            // FCN's stacked transposed convolutions are the most
            // excitable; a slightly lower rate keeps every seed stable.
            config.learning_rate = if model_name == "FCN" { 1.5e-3 } else { 2e-3 };
            config.batch_size = 4;
            config.gradient_clip = Some(5.0);
            config.early_stopping_patience = Some(6);
            let trainer = Trainer::new(config);
            let (train, val, test) = chronological_split(dataset.len());
            trainer.fit_segmenter(model.as_ref(), &dataset, &train, &val);
            accs.push(trainer.evaluate_segmenter(model.as_ref(), &dataset, &test) * 100.0);
        }
        let (mean, spread) = mean_and_spread(&accs);
        rows.push(vec![
            model_name.to_string(),
            "38-Cloud".to_string(),
            "Segmentation".to_string(),
            format!("{mean:.2}±{spread:.2}%"),
        ]);
    }
    format!(
        "## Table VI — raster classification and segmentation accuracy\n\n{}",
        markdown_table(&["model", "dataset", "application", "accuracy"], &rows)
    )
}

// ------------------------------------------------------------ Table VII

fn table7(quick: bool) -> String {
    let days = if quick { 5 } else { 10 };
    let mut rows = Vec::new();

    // Grid models on the Temperature dataset (reduced 16×32 grid).
    let weather = |seed: u64| {
        let raw = WeatherField::new(WeatherVariable::Temperature, seed)
            .with_grid(16, 32)
            .generate(days * 24);
        GridDatasetBuilder::new(raw).name("Temperature").steps_per_day(24).build()
    };
    for model_name in GRID_MODEL_NAMES {
        let mut dataset = weather(0);
        set_representation(&mut dataset, model_name);
        let (_, c, h, w) = dataset.dims();
        let model = make_grid_model(model_name, c, h, w, 7);
        let mut config = paper_train_config(1, 0);
        config.early_stopping_patience = None;
        let trainer = Trainer::new(config);
        let (train, val, _) = chronological_split(dataset.len());
        let report = trainer.fit_grid(model.as_ref(), &dataset, &train, &val);
        rows.push(vec![
            "Temperature".into(),
            "Prediction".into(),
            model_name.to_string(),
            timing_cell(report.mean_epoch_seconds(), report.mean_samples_per_sec()),
        ]);
    }

    // Classification on EuroSAT (32×32 reduced).
    let per_class = if quick { 6 } else { 12 };
    for model_name in ["DeepSAT V2", "SatCNN"] {
        let dataset = RasterDataset::classification("EuroSAT", 13, 32, 32, 10, per_class, 0);
        let dataset = if model_name == "DeepSAT V2" {
            dataset.with_additional_features()
        } else {
            dataset
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let model: Box<dyn RasterClassifier> = if model_name == "DeepSAT V2" {
            Box::new(DeepSatV2::new(13, 32, 32, 10, dataset.feature_len(), &mut rng))
        } else {
            Box::new(SatCnn::new(13, 32, 32, 10, &mut rng))
        };
        let mut config = paper_train_config(1, 0);
        config.early_stopping_patience = None;
        let trainer = Trainer::new(config);
        let (train, val, _) = shuffled_split(dataset.len(), 0);
        let report = trainer.fit_classifier(model.as_ref(), &dataset, &train, &val);
        rows.push(vec![
            "EuroSAT".into(),
            "Classification".into(),
            model_name.to_string(),
            timing_cell(report.mean_epoch_seconds(), report.mean_samples_per_sec()),
        ]);
    }

    // Segmentation on 38-Cloud.
    let scenes = if quick { 12 } else { 24 };
    for model_name in ["FCN", "UNet", "UNet++"] {
        let dataset = RasterDataset::cloud38(scenes, 32, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let model: Box<dyn Segmenter> = match model_name {
            "UNet" => Box::new(UNet::new(4, 1, 4, &mut rng)),
            "FCN" => Box::new(Fcn::new(4, 1, 4, &mut rng)),
            _ => Box::new(UNetPlusPlus::new(4, 1, 4, &mut rng)),
        };
        let mut config = paper_train_config(1, 0);
        config.batch_size = 4;
        config.early_stopping_patience = None;
        let trainer = Trainer::new(config);
        let (train, val, _) = chronological_split(dataset.len());
        let report = trainer.fit_segmenter(model.as_ref(), &dataset, &train, &val);
        rows.push(vec![
            "38-Cloud".into(),
            "Segmentation".into(),
            model_name.to_string(),
            timing_cell(report.mean_epoch_seconds(), report.mean_samples_per_sec()),
        ]);
    }
    format!(
        "## Table VII — training time per epoch (seconds)\n\n{}",
        markdown_table(
            &["dataset", "application", "model", "s/epoch (samples/s)"],
            &rows,
        )
    )
}

// -------------------------------------------------------------- Fig. 9

fn fig9(quick: bool, threads: Option<usize>) -> String {
    let per_class = if quick { 4 } else { 8 };
    let epoch_time = |bands: usize, size: usize, device: Device| -> f64 {
        let dataset = RasterDataset::classification("sweep", bands, size, size, 10, per_class, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let model = SatCnn::new(bands, size, size, 10, &mut rng);
        let mut config = paper_train_config(1, 0);
        config.early_stopping_patience = None;
        // The trainer pins every fit/evaluate call to its configured
        // device, so the device must go through the config — an ambient
        // `with_device` wrapper would be overridden inside the trainer.
        config.device = device;
        let trainer = Trainer::new(config);
        let (train, val, _) = shuffled_split(dataset.len(), 0);
        trainer
            .fit_classifier(&model, &dataset, &train, &val)
            .mean_epoch_seconds()
    };
    let parallel = threads.map_or_else(Device::parallel, Device::Parallel);
    let mut band_rows = Vec::new();
    for bands in [3usize, 5, 8, 10, 13] {
        let cpu = epoch_time(bands, 64, Device::Cpu);
        let gpu = epoch_time(bands, 64, parallel);
        band_rows.push(vec![
            format!("{bands}"),
            format!("{cpu:.3}"),
            format!("{gpu:.3}"),
            format!("{:.1}x", cpu / gpu.max(1e-9)),
        ]);
    }
    let mut grid_rows = Vec::new();
    for size in [28usize, 32, 64] {
        let cpu = epoch_time(3, size, Device::Cpu);
        let gpu = epoch_time(3, size, parallel);
        grid_rows.push(vec![
            format!("{size}x{size}"),
            format!("{cpu:.3}"),
            format!("{gpu:.3}"),
            format!("{:.1}x", cpu / gpu.max(1e-9)),
        ]);
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let env_note = if host_cores < parallel.threads() {
        format!(
            "\n\n> **Environment caveat:** this run executed on a host exposing only \
             {host_cores} core(s), so the {}-thread \"GPU\" column oversubscribes a \
             single core and measures dispatch overhead, not scaling — expect ~1x \
             speedups above. On a multi-core host the same command shows the parallel \
             speedup; the `kernel_regression` gate enforces it whenever ≥ 2 cores are \
             available. The kernel-level speedup that *is* visible on any host is the \
             blocked SIMD matmul ({} tier) vs the seed's naive loops — see \
             DESIGN.md §11. The serving reports (`results/serve_*.md`) embed this \
             host core count too: their replica-scaling numbers use sleep-cost \
             models, so they hold even here, but absolute req/s figures are only \
             comparable across hosts with matching core counts (DESIGN.md §12).",
            parallel.threads(),
            geotorch_tensor::ops::matmul::simd_kernel_name(),
        )
    } else {
        format!(
            "\n\n_Host: {host_cores} cores, matmul SIMD tier `{}`. The serving \
             reports (`results/serve_*.md`) embed the same core count for \
             cross-host comparison._",
            geotorch_tensor::ops::matmul::simd_kernel_name()
        )
    };
    format!(
        "## Figure 9 — epoch time vs bands and grid shape (SatCNN)\n\n\
         \"CPU\" = serial kernels; \"GPU\" = data-parallel kernels over {} threads \
         (the reproduction's GPU substitute).\n\n### Varying spectral bands (64×64 grid)\n\n{}\n\
         ### Varying grid shape (3 bands)\n\n{}{}",
        parallel.threads(),
        markdown_table(&["bands", "CPU s/epoch", "\"GPU\" s/epoch", "speedup"], &band_rows),
        markdown_table(&["grid", "CPU s/epoch", "\"GPU\" s/epoch", "speedup"], &grid_rows),
        env_note,
    )
}

// ------------------------------------------------------------ Table VIII

fn table8(quick: bool) -> String {
    let per_class = if quick { 3 } else { 10 };
    let epochs = if quick { 2 } else { 6 };
    let base_dir = std::env::temp_dir().join(format!("geotorch_table8_{}", std::process::id()));
    let mut rows = Vec::new();
    for count in 1..=5usize {
        // A chain of `count` normalized-difference appends over distinct
        // band pairs.
        let make_chain = || {
            let mut chain = Compose::new();
            for k in 0..count {
                chain = chain.add(AppendNormalizedDifferenceIndex::new(k % 13, (k + 1) % 13));
            }
            chain
        };

        // (a) Train with transforms applied on the fly.
        let dataset = RasterDataset::classification("t8", 13, 64, 64, 6, per_class, 1)
            .with_transform(make_chain());
        let bands = dataset.effective_bands();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let model = SatCnn::new(bands, 64, 64, 6, &mut rng);
        let mut config = paper_train_config(epochs, 0);
        config.early_stopping_patience = None;
        let trainer = Trainer::new(config);
        let (train, val, _) = shuffled_split(dataset.len(), 0);
        let on_the_fly = median_time(3, || {
            trainer.fit_classifier(&model, &dataset, &train, &val);
        });
        // Directly measured per-run transform cost inside training
        // (cumulative counter divided by the 3 timing repetitions).
        let in_train_transform = dataset.transform_seconds() / 3.0;

        // (b) Pre-transform offline (load → transform → write, Listing 9).
        let raw = RasterDataset::classification("t8", 13, 64, 64, 6, per_class, 1);
        let labels: Vec<usize> = (0..raw.len()).map(|i| raw.label(i)).collect();
        let images: Vec<geotorch_raster::Raster> = (0..raw.len())
            .map(|i| {
                let (t, _, _) = raw.get(i);
                geotorch_raster::Raster::from_tensor(&t).expect("tensor image")
            })
            .collect();
        let in_dir = base_dir.join(format!("in_{count}"));
        let out_dir = base_dir.join(format!("out_{count}"));
        RasterProcessing::write_geotiff_images(&RasterBatch::from_rasters(images), &in_dir)
            .expect("write raw images");
        let start = Instant::now();
        RasterProcessing::process_directory(&in_dir, &out_dir, &make_chain())
            .expect("offline pipeline");
        let pretransform = start.elapsed().as_secs_f64();

        // (c) Train on the pre-transformed images (no per-access work).
        let batch = RasterProcessing::load_geotiff_images(&out_dir).expect("load transformed");
        let dataset = RasterDataset::from_images("t8-pre", batch.rasters, labels, 6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let model = SatCnn::new(bands, 64, 64, 6, &mut rng);
        let trainer = Trainer::new({
            let mut c = paper_train_config(epochs, 0);
            c.early_stopping_patience = None;
            c
        });
        let pre_trained = median_time(3, || {
            trainer.fit_classifier(&model, &dataset, &train, &val);
        });

        rows.push(vec![
            format!("{count}"),
            format!("{on_the_fly:.2}"),
            format!("{in_train_transform:.3}"),
            format!("{pre_trained:.2}"),
            format!("{pretransform:.2}"),
            format!("{:.2}", pre_trained + pretransform),
        ]);
    }
    std::fs::remove_dir_all(&base_dir).ok();
    format!(
        "## Table VIII — on-the-fly vs offline raster transformation (seconds)\n\n{}",
        markdown_table(
            &[
                "transforms",
                "train w/ transforms",
                "(transform s in train)",
                "train w/ pretransforms",
                "pretransform",
                "pretransform total"
            ],
            &rows
        )
    )
}

/// Median wall-clock seconds of `repeats` runs of `f` (absorbs scheduler
/// noise on small timing cells).
fn median_time(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    times[repeats / 2]
}
