//! `tile_scene` — end-to-end large-scene tiled inference scenario.
//!
//! ```sh
//! cargo run --release -p geotorch-bench --bin tile_scene -- [--quick]
//! ```
//!
//! Generates a 4096×4096 three-band synthetic scene, serves a seeded
//! UNet segmenter behind the replica-sharded micro-batcher, and runs the
//! same overlapping tile grid through it twice:
//!
//! * **Phase A (embedded)** — [`geotorch_serve::run_mosaic`] drives the
//!   in-process [`ModelClient`]: bounded in-flight tile submission,
//!   halo-trimmed cores, reorder-buffer stitching into one mosaic.
//! * **Phase B (HTTP)** — per-tile keep-alive `POST /predict/unet`
//!   requests from concurrent clients, with client-side stitching
//!   through the same [`MosaicAccumulator`] geometry.
//!
//! The run fails (non-zero exit) if any tile is shed (429) or misses its
//! deadline (504), if the two mosaics disagree beyond 4 ulps, if the
//! pool high-water mark grows past the configured bound while tiling
//! (the streaming pipeline must not buffer the scene), or if `/metrics`
//! does not expose the `serve.tile.*` series. Throughput and per-tile
//! latency go to `results/tiled_inference.md`.
//!
//! `--quick` keeps the full-size scene but restricts the region of
//! interest to an interior 1024×1024 window (121 tiles instead of
//! ~1850) — the CI smoke configuration.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::SeedableRng;

use geotorch_bench::{markdown_table, LatencySummary};
use geotorch_datasets::synth::RasterScene;
use geotorch_datasets::GridSampler;
use geotorch_models::raster::UNet;
use geotorch_raster::{core_of, BlendMode, MosaicAccumulator, Raster, Window};
use geotorch_serve::{BatchConfig, Registry, ServeConfig, Server, TileConfig};
use geotorch_tensor::{pool, Device, Tensor};

const MODEL: &str = "unet";
const SCENE_SIZE: usize = 4096;
const BANDS: usize = 3;
const TILE: usize = 128;
const STRIDE: usize = 96;
const HALO: usize = 16;
const HTTP_CLIENTS: usize = 4;

/// The tiling pipeline must stream, not buffer: admitting at most
/// `max_in_flight` tiles bounds its working set to the mosaic planes
/// plus a few tiles' worth of scratch, far below the scene itself.
/// 256 MiB gives the batcher's activations ~3x headroom while still
/// catching any regression that accumulates per-tile buffers.
const POOL_GROWTH_BOUND: u64 = 256 << 20;

fn registry() -> Registry {
    let mut registry = Registry::new();
    registry.register_segmenter(MODEL, None, || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        UNet::new(BANDS, 1, 4, &mut rng)
    });
    registry
}

fn tile_config() -> TileConfig {
    TileConfig {
        tile: TILE,
        stride: STRIDE,
        halo: HALO,
        alignment: 4,
        classes: 1,
        max_in_flight: 4,
        tile_deadline: Some(Duration::from_secs(60)),
        blend: BlendMode::Cosine,
    }
}

/// Monotone integer key for f32 ulp distances.
fn ulp_key(x: f32) -> i32 {
    let bits = x.to_bits() as i32;
    if bits < 0 {
        i32::MIN - bits
    } else {
        bits
    }
}

fn max_ulp(a: &[f32], b: &[f32]) -> u32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ulp_key(x).abs_diff(ulp_key(y)))
        .max()
        .unwrap_or(0)
}

/// A keep-alive HTTP/1.1 client: one connection, many requests.
struct KeepAliveClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connect to server");
        KeepAliveClient { stream, buf: Vec::new() }
    }

    /// POST `body`, reusing the connection; returns (status, body).
    fn post(&mut self, path: &str, body: &str) -> (u16, String) {
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes()).expect("send request");
        // Read until the header block is complete, then drain the body
        // by Content-Length, leaving any pipelined leftovers in `buf`.
        let header_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let mut chunk = [0u8; 16 << 10];
            let n = self.stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "server closed mid-response");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..header_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("Content-Length header");
        while self.buf.len() < header_end + content_length {
            let mut chunk = [0u8; 16 << 10];
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "server closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.buf[header_end..header_end + content_length])
            .to_string();
        self.buf.drain(..header_end + content_length);
        (status, body)
    }
}

struct PhaseResult {
    tiles: usize,
    elapsed: f64,
    latency: LatencySummary,
    mosaic: Raster,
}

/// Phase B: fetch every tile over HTTP with keep-alive clients, then
/// stitch client-side in deterministic window order.
fn run_http_phase(
    addr: SocketAddr,
    scene: &Raster,
    roi: Window,
    cfg: &TileConfig,
) -> PhaseResult {
    let sampler = GridSampler::new(roi, (cfg.tile, cfg.tile), (cfg.stride, cfg.stride))
        .expect("grid geometry");
    let windows: Vec<Window> = sampler.windows().collect();
    let path = format!("/predict/{MODEL}");
    let next = AtomicUsize::new(0);
    type FetchedTile = Option<(Vec<f32>, f64)>;
    let preds: Vec<Mutex<FetchedTile>> = windows.iter().map(|_| Mutex::new(None)).collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..HTTP_CLIENTS.min(windows.len()) {
            scope.spawn(|| {
                let mut client = KeepAliveClient::connect(addr);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(window) = windows.get(i) else { break };
                    let tile = scene.read_window_tensor(window).expect("tile read");
                    let payload = serde_json::to_string(&tile).expect("serialize tile");
                    let sent = Instant::now();
                    let (status, body) = client.post(&path, &payload);
                    let secs = sent.elapsed().as_secs_f64();
                    assert_eq!(
                        status, 200,
                        "tile {i} got HTTP {status} — shed or deadline-expired under the \
                         quick-mode tile budget: {body}"
                    );
                    // The response is `{"model": ..., "shape": ..., "data":
                    // ...}`; `Tensor`'s value-based decoder reads the two
                    // tensor fields and ignores the rest.
                    let parsed: Tensor =
                        serde_json::from_str(&body).expect("prediction payload");
                    assert_eq!(parsed.shape(), &[cfg.classes, cfg.tile, cfg.tile]);
                    *preds[i].lock().unwrap() = Some((parsed.as_slice().to_vec(), secs));
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut acc = MosaicAccumulator::new(cfg.classes, roi.height, roi.width, cfg.blend);
    let mut latencies = Vec::with_capacity(windows.len());
    for (window, slot) in windows.iter().zip(&preds) {
        let (data, secs) = slot.lock().unwrap().take().expect("tile fetched");
        latencies.push(secs);
        let pred = Tensor::from_vec(data, &[cfg.classes, cfg.tile, cfg.tile]);
        let core = core_of(window, &roi, cfg.halo);
        acc.add_tile(&window.relative_to(&roi), &core.relative_to(&roi), &pred)
            .expect("stitch tile");
    }
    let mosaic = acc.finalize().expect("full coverage");
    PhaseResult {
        tiles: windows.len(),
        elapsed,
        latency: LatencySummary::from_secs(&latencies),
        mosaic,
    }
}

fn fetch_metrics(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect for metrics");
    let request = format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send metrics request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read metrics");
    response
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    for arg in &args {
        if arg != "--quick" {
            eprintln!("unknown argument `{arg}` (expected --quick)");
            std::process::exit(2);
        }
    }

    pool::set_enabled(true);
    println!("generating {SCENE_SIZE}x{SCENE_SIZE} {BANDS}-band scene...");
    let scene_started = Instant::now();
    let (scene, _) = RasterScene::new(BANDS, SCENE_SIZE, SCENE_SIZE, 11).segmentation_image(1);
    println!("scene ready in {:.1}s", scene_started.elapsed().as_secs_f64());

    let roi = if quick {
        // Interior window: exercises non-zero anchors and clamped edges.
        Window::new(512, 512, 1024, 1024)
    } else {
        scene.extent()
    };
    let cfg = tile_config();
    cfg.validate(&roi).expect("tile geometry");

    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 2,
            device: Device::parallel(),
            queue_bound: 64,
            replicas: 2,
        },
        http_workers: HTTP_CLIENTS,
        enable_telemetry: true,
        default_deadline_ms: 60_000,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry(), config).expect("server starts");
    let addr = server.addr();
    let client = server.client(MODEL).expect("registered model");

    // Warm-up: one small mosaic populates the pool's size classes and
    // the per-replica scratch, so the high-water window below measures
    // the steady-state streaming pipeline, not first-touch growth.
    let warm_roi = Window::new(roi.row, roi.col, 256, 256);
    geotorch_serve::run_mosaic(&client, &scene, warm_roi, cfg).expect("warm-up mosaic");
    let high_water_before = pool::stats().high_water_bytes;

    println!(
        "phase A (embedded): {}x{} roi, tile {TILE}/stride {STRIDE}/halo {HALO}...",
        roi.height, roi.width
    );
    let (mosaic_a, stats_a) =
        geotorch_serve::run_mosaic(&client, &scene, roi, cfg).expect("embedded mosaic");
    let latency_a = LatencySummary::from_secs(
        &stats_a.tile_latencies.iter().map(|d| d.as_secs_f64()).collect::<Vec<_>>(),
    );

    println!("phase B (HTTP): {HTTP_CLIENTS} keep-alive clients, client-side stitching...");
    let phase_b = run_http_phase(addr, &scene, roi, &cfg);

    let high_water_after = pool::stats().high_water_bytes;
    let growth = high_water_after.saturating_sub(high_water_before);

    let metrics = fetch_metrics(addr);
    server.shutdown();

    // --- acceptance gates ---
    let ulp = max_ulp(mosaic_a.as_slice(), phase_b.mosaic.as_slice());
    assert_eq!(mosaic_a.bands(), cfg.classes);
    assert_eq!(
        (mosaic_a.height(), mosaic_a.width()),
        (roi.height, roi.width),
        "mosaic extent must match the roi"
    );
    assert!(
        ulp <= 4,
        "embedded and HTTP mosaics disagree by {ulp} ulps — the pipeline is \
         no longer batch-order independent"
    );
    assert!(
        growth <= POOL_GROWTH_BOUND,
        "pool high-water grew {:.1} MiB while tiling (bound {:.0} MiB) — the \
         streaming pipeline is buffering instead of recycling",
        mib(growth),
        mib(POOL_GROWTH_BOUND)
    );
    for series in ["serve.tile.in_flight", "serve.tile.requests", "serve.tile.stitched"] {
        assert!(
            metrics.contains(series),
            "/metrics is missing `{series}`; got: {metrics}"
        );
    }

    // --- report ---
    let mode = if quick { "quick" } else { "full" };
    let row = |phase: &str, tiles: usize, elapsed: f64, latency: &LatencySummary| {
        vec![
            phase.to_string(),
            tiles.to_string(),
            format!("{:.1}", tiles as f64 / elapsed),
            format!("{:.1}", latency.p50_ms),
            format!("{:.1}", latency.p95_ms),
        ]
    };
    let table = markdown_table(
        &["phase", "tiles", "tiles/s", "tile p50 (ms)", "tile p95 (ms)"],
        &[
            row("A: embedded `run_mosaic`", stats_a.tiles, stats_a.elapsed.as_secs_f64(), &latency_a),
            row("B: HTTP keep-alive + client stitch", phase_b.tiles, phase_b.elapsed, &phase_b.latency),
        ],
    );
    let report = format!(
        "# Tiled inference over a {SCENE_SIZE}x{SCENE_SIZE} scene ({mode} mode)\n\n\
         Scene: {BANDS} bands; roi {}x{} at ({}, {}); tile {TILE}, stride {STRIDE}, halo {HALO}, \
         cosine blending; UNet(base 4) behind the batcher (max_batch 4, 2 replicas, \
         {} in flight).\n\n{table}\n\
         Peak pool bytes: {:.1} MiB total, +{:.1} MiB during tiling \
         (bound {:.0} MiB). Embedded and HTTP mosaics agree within {ulp} ulps.\n",
        roi.height, roi.width, roi.row, roi.col, cfg.max_in_flight,
        mib(high_water_after), mib(growth), mib(POOL_GROWTH_BOUND),
    );
    std::fs::create_dir_all("results").expect("create results dir");
    let report = format!("{report}{}", geotorch_bench::host_stamp());
    std::fs::write("results/tiled_inference.md", &report).expect("write report");
    println!("\n{report}");
    println!("wrote results/tiled_inference.md");
}
