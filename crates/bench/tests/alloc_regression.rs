//! Allocation-regression gate for the pooled tensor storage: after a
//! warm-up pass, a fixed training loop and a serve-style no-grad forward
//! stream must run almost entirely out of recycled pool buffers. A jump
//! in steady-state `alloc.pool_miss` means a hot path started allocating
//! fresh buffers again — exactly the regression the pool exists to
//! prevent.

use geotorch_core::{Trainer, UpdateMode};
use geotorch_datasets::shuffled_split;
use geotorch_datasets::RasterDataset;
use geotorch_models::raster::SatCnn;
use geotorch_models::RasterClassifier;
use geotorch_nn::Var;
use geotorch_tensor::{pool, Device, Tensor};
use rand::SeedableRng;

/// Steady-state miss budget for one measured training epoch. The epoch
/// performs thousands of pooled acquisitions; after warm-up nearly all
/// of them must be recycled. The budget absorbs small wobbles (ragged
/// batch shuffling, state-dict snapshots forcing a copy-on-write) but
/// fails loudly if a kernel regresses to fresh allocation per call.
const TRAIN_MISS_BUDGET: u64 = 64;

/// Steady-state miss budget for 32 serve-style forwards. Warm-up runs
/// the identical shapes, so the measured window should recycle every
/// buffer; a tiny allowance covers scratch growth inside the worker
/// pool's first parallel dispatches.
const SERVE_MISS_BUDGET: u64 = 8;

#[test]
fn steady_state_training_runs_from_the_pool() {
    pool::set_enabled(true);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dataset = RasterDataset::classification("alloc", 3, 16, 16, 3, 24, 0);
    let model = SatCnn::new(3, 16, 16, 3, &mut rng);
    let (train, val, _) = shuffled_split(dataset.len(), 0);

    let mut config = geotorch_bench::paper_train_config(2, 0);
    config.batch_size = 8;
    config.early_stopping_patience = None;
    config.update_mode = UpdateMode::Incremental;
    config.device = Device::Cpu;

    // Warm-up: two epochs populate every size class the loop touches.
    Trainer::new(config.clone()).fit_classifier(&model, &dataset, &train, &val);

    // Measured window: the same loop again, counting pool misses only.
    let before = pool::stats();
    Trainer::new(config).fit_classifier(&model, &dataset, &train, &val);
    let after = pool::stats();

    let misses = after.misses - before.misses;
    let hits = after.hits - before.hits;
    eprintln!("train steady state: {hits} pool hits, {misses} misses (budget {TRAIN_MISS_BUDGET})");
    assert!(
        misses <= TRAIN_MISS_BUDGET,
        "steady-state training allocated fresh buffers {misses} times \
         (budget {TRAIN_MISS_BUDGET}, hits {hits}) — a hot path stopped recycling"
    );
    // The budget only means something if the loop actually uses the pool.
    assert!(
        hits > 1000,
        "expected thousands of pooled acquisitions per epoch, saw {hits}"
    );
}

#[test]
fn steady_state_serve_forwards_run_from_the_pool() {
    pool::set_enabled(true);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let model = SatCnn::new(3, 16, 16, 4, &mut rng);
    let batch = Tensor::rand_uniform(&[8, 3, 16, 16], -1.0, 1.0, &mut rng);

    let forward = |input: &Tensor| {
        geotorch_nn::no_grad(|| {
            model
                .forward(&Var::constant(input.clone()), None)
                .value()
        })
    };

    // Warm-up: identical shapes populate the shelves.
    for _ in 0..4 {
        let _ = forward(&batch);
    }

    let before = pool::stats();
    for _ in 0..32 {
        let out = forward(&batch);
        assert_eq!(out.shape(), &[8, 4]);
    }
    let after = pool::stats();

    let misses = after.misses - before.misses;
    let hits = after.hits - before.hits;
    eprintln!("serve steady state: {hits} pool hits, {misses} misses (budget {SERVE_MISS_BUDGET})");
    assert!(
        misses <= SERVE_MISS_BUDGET,
        "steady-state serving allocated fresh buffers {misses} times \
         (budget {SERVE_MISS_BUDGET}, hits {hits})"
    );
    assert!(
        hits > 100,
        "expected the forward stream to acquire from the pool, saw {hits} hits"
    );
}
