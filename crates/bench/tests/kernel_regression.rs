//! Performance-regression gate for the fast kernels, in the style of
//! `alloc_regression.rs`: the blocked SIMD matmul must stay ≥ 3x faster
//! than the naive oracle at 512×512 single-threaded, its packing
//! buffers must recycle from the tensor pool at steady state, and the
//! parallel band split must actually scale when more than one core is
//! available.
//!
//! Wall-clock assertions are meaningless in unoptimised builds and
//! noisy CI matrices, so the timed tests skip themselves under
//! `debug_assertions`, under the chaos matrix (`GEOTORCH_CHAOS_SEED`),
//! and — for the scaling test — on single-core runners. CI runs this
//! file with `--release` in the bench job.

use geotorch_tensor::ops::matmul::matmul_naive;
use geotorch_tensor::{pool, with_device, Device, Tensor};
use rand::SeedableRng;
use std::time::Instant;

/// Minimum speedup of the blocked kernel over `matmul_naive` at
/// 512×512×512 on one thread. Locally the packed AVX+FMA kernel
/// measures 25–35x; 3x leaves room for slow CI steppings while still
/// catching any fallback to a scalar path.
const MIN_SPEEDUP_VS_NAIVE: f64 = 3.0;

/// Steady-state pool-miss budget for a window of 16 large matmuls.
/// After warm-up, pack buffers and outputs must all be recycled.
const PACK_MISS_BUDGET: u64 = 4;

/// Minimum parallel-over-serial speedup at 768³ when ≥ 2 cores exist.
const MIN_PARALLEL_SPEEDUP: f64 = 1.3;

fn perf_skip_reason() -> Option<&'static str> {
    if cfg!(debug_assertions) {
        return Some("unoptimised build");
    }
    if std::env::var("GEOTORCH_CHAOS_SEED").is_ok() {
        return Some("chaos matrix run");
    }
    None
}

fn square(n: usize, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut rng)
}

/// Fastest of `reps` timed runs — minimum, not mean, to shed scheduler
/// noise on shared runners.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn blocked_matmul_is_at_least_3x_naive_at_512() {
    if let Some(reason) = perf_skip_reason() {
        eprintln!("skipping timed kernel gate: {reason}");
        return;
    }
    let a = square(512, 1);
    let b = square(512, 2);
    let _ = a.matmul(&b); // warm caches, pool, and SIMD detection
    let blocked = best_of(5, || {
        std::hint::black_box(a.matmul(&b));
    });
    let naive = best_of(2, || {
        std::hint::black_box(matmul_naive(&a, &b));
    });
    let speedup = naive / blocked;
    eprintln!(
        "matmul 512: blocked {:.2} ms, naive {:.2} ms → {speedup:.1}x (gate {MIN_SPEEDUP_VS_NAIVE}x)",
        blocked * 1e3,
        naive * 1e3
    );
    assert!(
        speedup >= MIN_SPEEDUP_VS_NAIVE,
        "blocked matmul regressed: only {speedup:.2}x over naive at 512 \
         (gate {MIN_SPEEDUP_VS_NAIVE}x)"
    );
}

#[test]
fn pack_buffers_recycle_from_the_pool() {
    pool::set_enabled(true);
    let a = square(512, 3);
    let b = square(512, 4);
    // Warm-up populates the pack-buffer and output size classes.
    for _ in 0..3 {
        let _ = a.matmul(&b);
    }
    let before = pool::stats();
    for _ in 0..16 {
        let _ = a.matmul(&b);
    }
    let after = pool::stats();
    let misses = after.misses - before.misses;
    let hits = after.hits - before.hits;
    eprintln!("pack steady state: {hits} pool hits, {misses} misses (budget {PACK_MISS_BUDGET})");
    assert!(
        misses <= PACK_MISS_BUDGET,
        "steady-state matmul packing allocated fresh buffers {misses} times \
         (budget {PACK_MISS_BUDGET}, hits {hits}) — packing stopped recycling"
    );
    assert!(
        hits >= 32,
        "expected pack/output acquisitions to hit the pool, saw {hits} hits"
    );
}

#[test]
fn parallel_band_split_scales_with_cores() {
    if let Some(reason) = perf_skip_reason() {
        eprintln!("skipping parallel scaling gate: {reason}");
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!("skipping parallel scaling gate: single-core runner");
        return;
    }
    let a = square(768, 5);
    let b = square(768, 6);
    let _ = a.matmul(&b);
    let serial = best_of(3, || {
        std::hint::black_box(a.matmul(&b));
    });
    let threads = cores.min(4);
    let parallel = with_device(Device::Parallel(threads), || {
        let _ = a.matmul(&b); // warm the worker pool
        best_of(3, || {
            std::hint::black_box(a.matmul(&b));
        })
    });
    let speedup = serial / parallel;
    eprintln!(
        "matmul 768: serial {:.2} ms, {threads}-thread {:.2} ms → {speedup:.2}x (gate {MIN_PARALLEL_SPEEDUP}x)",
        serial * 1e3,
        parallel * 1e3
    );
    assert!(
        speedup >= MIN_PARALLEL_SPEEDUP,
        "parallel band split stopped scaling: {speedup:.2}x on {threads} threads \
         (gate {MIN_PARALLEL_SPEEDUP}x)"
    );
}
