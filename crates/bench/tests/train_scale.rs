//! Scale acceptance for the streaming data-parallel trainer: on a
//! multi-core host, K=4 replicas must deliver ≥1.5x the K=1 throughput
//! over the spilled-trip pipeline, with pool high-water growth bounded
//! by chunk + prefetch queue rather than dataset size.
//!
//! Self-gated: on runners with fewer than 4 cores the throughput
//! assertion cannot hold (the replicas time-slice one core), so the test
//! downgrades to a correctness-only pass. CI runs it from the
//! `train-scale` job on ≥4-core runners.

use std::sync::Arc;

use geotorch_bench::stream::{mean_samples_per_sec, spill_trips, train_streamed};
use geotorch_tensor::pool;

#[test]
fn k4_streams_at_least_1_5x_of_k1_with_bounded_pool_growth() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let dir = std::env::temp_dir().join(format!("geotorch-train-scale-{}", std::process::id()));
    // Enough work per replica that thread startup amortises away.
    let store = Arc::new(spill_trips(&dir, 262_144, 16_384));
    let pool_before = pool::stats().high_water_bytes;

    let k1 = train_streamed(&store, 1, 2, 512).expect("K=1 run");
    let k4 = train_streamed(&store, 4, 2, 512).expect("K=4 run");
    let sps1 = mean_samples_per_sec(&k1);
    let sps4 = mean_samples_per_sec(&k4);
    assert!(sps1 > 0.0 && sps4 > 0.0, "throughput must be measured");
    assert!(
        k1.train_losses.iter().chain(&k4.train_losses).all(|l| l.is_finite()),
        "losses must stay finite"
    );

    // Pool high-water growth across both sweeps is bounded by a fixed
    // budget (batches in flight × replicas), never by the 262K rows:
    // 64 MB is an order of magnitude above what the pipeline needs.
    let growth = pool::stats().high_water_bytes.saturating_sub(pool_before);
    assert!(
        growth < 64 * 1024 * 1024,
        "pool high-water grew {growth} bytes — streaming must not scale memory with rows"
    );

    let reports_stamped = k1.host_cores == cores && k4.host_cores == cores;
    assert!(reports_stamped, "TrainReport must carry the host core count");

    if cores < 4 {
        eprintln!(
            "runner exposes {cores} core(s) — skipping the 1.5x throughput assertion \
             (K=4 {sps4:.0} vs K=1 {sps1:.0} samples/s measured)"
        );
    } else {
        assert!(
            sps4 >= 1.5 * sps1,
            "K=4 must reach >=1.5x K=1 throughput on {cores} cores: {sps4:.0} vs {sps1:.0} samples/s"
        );
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
