//! Acceptance tests for the serving robustness work, driven over real
//! HTTP sockets and measured with the bench crate's [`LatencySummary`]:
//!
//! * **Overload**: with an admission bound of B, firing waves of > 2B
//!   concurrent requests must shed with 429 while every admitted request
//!   completes within its deadline, with an admitted p99 within 2x of
//!   the unloaded p99 — and `/healthz` must walk ok → degraded → ok as
//!   the backpressure watermarks trip and clear.
//! * **Graceful drain**: shutdown with requests in flight answers every
//!   admitted request (0 dropped) and returns well inside the drain
//!   hard timeout.
//!
//! The two tests drive process-global telemetry and real load, so they
//! serialise through a gate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use geotorch_bench::LatencySummary;
use geotorch_nn::{Module, Var};
use geotorch_serve::{BatchConfig, Registry, ServeConfig, ServeModel, Server};
use geotorch_tensor::{Device, Tensor};
use serde::Value;

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Sleeps a fixed time per forward, so queueing behaviour is the only
/// variable under test.
struct FixedCost(u64);

impl Module for FixedCost {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for FixedCost {
    fn predict(&self, batch: &Var) -> Var {
        std::thread::sleep(Duration::from_millis(self.0));
        batch.mul_scalar(2.0)
    }
}

const BOUND: usize = 8;

fn start_server(drain_timeout_ms: u64) -> Server {
    let mut registry = Registry::new();
    registry.register("fixed", None, || Box::new(FixedCost(8)) as Box<dyn ServeModel>);
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 1,
            device: Device::Cpu,
            queue_bound: BOUND,
            replicas: 1,
        },
        // Enough HTTP workers that sockets are never the bottleneck:
        // admission control, not accept capacity, must do the shedding.
        http_workers: 3 * BOUND,
        enable_telemetry: true,
        default_deadline_ms: 10_000,
        socket_timeout_ms: 10_000,
        max_body: 1 << 20,
        drain_timeout_ms,
    };
    Server::start("127.0.0.1:0", registry, config).expect("server starts")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, payload) = response.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, payload.to_string())
}

fn healthz_status(addr: SocketAddr) -> String {
    let (status, body) = {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let request =
            format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("receive");
        let (head, payload) = response.split_once("\r\n\r\n").expect("split");
        let status: u16 = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap();
        (status, payload.to_string())
    };
    assert!(status == 200 || status == 503, "healthz must always answer");
    let health: Value = serde_json::from_str(&body).expect("healthz is JSON");
    health
        .get("status")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

/// Fire one wave of `n` concurrent single-shot requests; returns
/// (status, latency seconds) per request.
fn wave(addr: SocketAddr, payload: &str, n: usize) -> Vec<(u16, f64)> {
    let barrier = Arc::new(Barrier::new(n));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let started = Instant::now();
                    let (status, _) = post(addr, "/predict/fixed", payload);
                    (status, started.elapsed().as_secs_f64())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn overload_sheds_429_admitted_meet_deadlines_and_health_recovers() {
    let _g = serial();
    let server = start_server(30_000);
    let addr = server.addr();
    let payload = serde_json::to_string(&Tensor::from_vec(vec![1.0], &[1])).unwrap();

    // Warm-up, then the unloaded baseline: waves of exactly the bound,
    // so the baseline includes the same batching/queueing pipeline the
    // overloaded admitted requests go through.
    post(addr, "/predict/fixed", &payload);
    assert_eq!(healthz_status(addr), "ok", "healthy before load");
    let mut baseline = Vec::new();
    for _ in 0..4 {
        for (status, secs) in wave(addr, &payload, BOUND) {
            assert_eq!(status, 200, "baseline waves are under the bound");
            baseline.push(secs);
        }
    }
    let baseline_summary = LatencySummary::from_secs(&baseline);

    // Overload: waves of 3B concurrent requests against a bound of B,
    // with a healthz poller watching for the degraded window.
    let stop_poller = Arc::new(AtomicBool::new(false));
    let poller = std::thread::spawn({
        let stop = Arc::clone(&stop_poller);
        move || {
            let mut saw_degraded = false;
            while !stop.load(Ordering::SeqCst) {
                if healthz_status(addr) == "degraded" {
                    saw_degraded = true;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            saw_degraded
        }
    });
    let mut outcomes = Vec::new();
    for _ in 0..4 {
        outcomes.extend(wave(addr, &payload, 3 * BOUND));
    }
    stop_poller.store(true, Ordering::SeqCst);
    let saw_degraded = poller.join().unwrap();

    let admitted: Vec<f64> = outcomes
        .iter()
        .filter(|(s, _)| *s == 200)
        .map(|(_, secs)| *secs)
        .collect();
    let shed = outcomes.iter().filter(|(s, _)| *s == 429).count();
    let other: Vec<u16> = outcomes
        .iter()
        .map(|(s, _)| *s)
        .filter(|s| *s != 200 && *s != 429)
        .collect();
    assert!(
        other.is_empty(),
        "overload must produce only 200s and 429s, got {other:?}"
    );
    assert!(shed > 0, "waves of 3x the bound must shed");
    assert!(
        admitted.len() >= BOUND,
        "admission control must still serve up to the bound per wave, served {}",
        admitted.len()
    );

    // Admitted requests are the point of load shedding: they must not
    // absorb the overload as latency.
    let admitted_summary = LatencySummary::from_secs(&admitted);
    assert!(
        admitted_summary.p99_ms <= 2.0 * baseline_summary.p99_ms,
        "admitted p99 {:.2} ms vs unloaded p99 {:.2} ms — more than 2x under overload",
        admitted_summary.p99_ms,
        baseline_summary.p99_ms
    );

    assert!(
        saw_degraded,
        "healthz must report degraded while the queue is past its high watermark"
    );
    // Hysteresis: once the waves drain, health returns to ok.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let status = healthz_status(addr);
        if status == "ok" {
            break;
        }
        assert!(Instant::now() < deadline, "healthz stuck at `{status}` after the load");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();
}

/// Closed-loop throughput of a fixed-cost model across `replicas`
/// replica threads, measured directly against the batcher (no HTTP).
fn replica_throughput(replicas: usize) -> f64 {
    use geotorch_serve::ModelWorker;
    let config = BatchConfig {
        max_batch: 1,
        max_wait_ms: 0,
        device: Device::Cpu,
        queue_bound: 64,
        replicas,
    };
    let worker =
        ModelWorker::spawn("fixed", config, || Ok(Box::new(FixedCost(8)))).expect("spawn");
    let client = worker.client();
    const CLIENTS: usize = 8;
    const REQUESTS: usize = 12;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let client = client.clone();
            scope.spawn(move || {
                for _ in 0..REQUESTS {
                    let sample = Tensor::from_vec(vec![1.0], &[1]);
                    let out = client
                        .predict_with_deadline(sample, Some(Duration::from_secs(30)))
                        .expect("predict");
                    assert_eq!(out.at(&[0]), 2.0, "fixed-cost model doubles");
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    worker.shutdown();
    (CLIENTS * REQUESTS) as f64 / wall
}

/// The replica-sharding acceptance bar: 4 replicas of a fixed-cost
/// (sleeping, not CPU-bound) model must sustain at least 2x the
/// throughput of 1 replica — true even on a single-core host, because
/// sleeping replica threads overlap.
#[test]
fn four_replicas_double_fixed_cost_throughput() {
    let _g = serial();
    let one = replica_throughput(1);
    let four = replica_throughput(4);
    assert!(
        four >= 2.0 * one,
        "4 replicas sustained {four:.1} req/s vs {one:.1} req/s with 1 — need >= 2x"
    );
}

#[test]
fn graceful_shutdown_answers_every_in_flight_request() {
    let _g = serial();
    const IN_FLIGHT: usize = 16;
    let server = start_server(10_000);
    let addr = server.addr();
    let payload = serde_json::to_string(&Tensor::from_vec(vec![7.0], &[1])).unwrap();
    post(addr, "/predict/fixed", &payload); // warm-up

    let barrier = Arc::new(Barrier::new(IN_FLIGHT + 1));
    let outcomes: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..IN_FLIGHT)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let payload = payload.as_str();
                scope.spawn(move || {
                    barrier.wait();
                    post(addr, "/predict/fixed", payload)
                })
            })
            .collect();
        barrier.wait();
        // Give the HTTP workers time to read every request and admit it
        // into the batch queue, then pull the plug mid-flight.
        std::thread::sleep(Duration::from_millis(30));
        let started = Instant::now();
        server.shutdown();
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "drain must finish well inside the 10 s hard timeout, took {elapsed:?}"
        );
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Zero dropped: every request that reached the server gets a
    // complete, parseable answer — an admitted one gets its prediction.
    let ok = outcomes.iter().filter(|(s, _)| *s == 200).count();
    for (status, body) in &outcomes {
        // 200: admitted and served through the drain. 429: shed at
        // admission (16 > the bound of 8). 503: raced the stop flag.
        // All three are complete answers; a dropped connection would
        // have failed the read in `post` instead.
        assert!(
            *status == 200 || *status == 429 || *status == 503,
            "drain must answer every request cleanly, got {status}: {body}"
        );
        if *status == 200 {
            let parsed: Value = serde_json::from_str(body).expect("complete JSON body");
            let data = parsed.get("data").and_then(Value::as_array).expect("tensor data");
            assert_eq!(data.len(), 1, "complete prediction payload");
        }
    }
    assert!(
        ok >= 1,
        "requests admitted before the drain must still be served, got {outcomes:?}"
    );
}
