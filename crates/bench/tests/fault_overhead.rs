//! Regression check that disarmed fault points are actually free: no
//! heap allocation and no measurable latency. This file is its own test
//! binary so the `#[global_allocator]` accounting is not polluted by
//! unrelated tests running in parallel.

use std::time::{Duration, Instant};

use geotorch_bench::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn disarmed_fault_points_allocate_nothing_and_cost_nanoseconds() {
    // Make sure nothing armed the registry earlier in this process.
    geotorch_telemetry::fault::clear();
    assert!(!geotorch_telemetry::fault::armed());

    // Touch the macro once so any lazy one-time setup is outside the
    // measured window.
    let _ = geotorch_telemetry::fault_point!("bench.fault.overhead");

    let live_before = ALLOC.reset_peak();
    let started = Instant::now();
    for _ in 0..1_000_000 {
        let r = geotorch_telemetry::fault_point!("bench.fault.overhead");
        assert!(r.is_ok());
    }
    let elapsed = started.elapsed();
    let peak_growth = ALLOC.peak().saturating_sub(live_before);

    // A disarmed point is one relaxed atomic load; a million of them is
    // sub-millisecond on any modern core. 500 ms leaves two orders of
    // magnitude of headroom for slow CI.
    assert!(
        elapsed < Duration::from_millis(500),
        "1M disarmed fault points took {elapsed:?}"
    );
    // The loop itself must not allocate. The test harness may touch the
    // heap from its own bookkeeping, so allow a small fixed tolerance
    // rather than demanding exactly zero.
    assert!(
        peak_growth <= 16 << 10,
        "disarmed fault points grew the heap by {peak_growth} bytes"
    );
}
