//! End-to-end check of the `--profile` telemetry path: training under an
//! enabled telemetry layer must produce a JSON snapshot that parses and
//! names the instrumented kernels, with timings consistent with the
//! observed wall-clock.

use geotorch_core::{TrainConfig, Trainer, UpdateMode};
use geotorch_datasets::{shuffled_split, RasterDataset};
use geotorch_models::raster::SatCnn;
use geotorch_tensor::Device;
use rand::SeedableRng;

#[test]
fn profile_snapshot_covers_instrumented_kernels() {
    // This test binary is its own process, so the telemetry global must
    // start disabled...
    assert!(
        !geotorch_telemetry::enabled(),
        "telemetry must be off by default"
    );
    // ...and an untouched registry snapshots to an empty stats list.
    let empty: serde::Value =
        serde_json::from_str(&geotorch_telemetry::snapshot_json()).expect("valid JSON when empty");
    assert_eq!(
        empty.get("stats").and_then(serde::Value::as_array).map(<[serde::Value]>::len),
        Some(0)
    );

    geotorch_telemetry::set_enabled(true);
    let start = std::time::Instant::now();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let dataset = RasterDataset::classification("profile", 3, 16, 16, 3, 6, 0);
    let model = SatCnn::new(3, 16, 16, 3, &mut rng);
    let config = TrainConfig {
        epochs: 2,
        batch_size: 4,
        learning_rate: 1e-3,
        early_stopping_patience: None,
        update_mode: UpdateMode::Incremental,
        gradient_clip: None,
        seed: 0,
        device: Device::Cpu,
        replicas: 1,
    };
    let trainer = Trainer::new(config);
    let (train, val, _) = shuffled_split(dataset.len(), 0);
    trainer.fit_classifier(&model, &dataset, &train, &val);
    let wall_ns = start.elapsed().as_nanos() as u64;
    geotorch_telemetry::set_enabled(false);

    let json = geotorch_telemetry::snapshot_json();
    let parsed: serde::Value = serde_json::from_str(&json).expect("snapshot must be JSON");
    let stats = parsed
        .get("stats")
        .and_then(serde::Value::as_array)
        .expect("stats array");
    let names: Vec<&str> = stats
        .iter()
        .map(|s| s.get("name").and_then(serde::Value::as_str).expect("string name"))
        .collect();
    for key in [
        "tensor.matmul",
        "tensor.conv2d",
        "tensor.im2col",
        "nn.conv2d_bwd",
        "nn.optim.step",
        "core.trainer.epoch",
        "core.trainer.epochs",
        "core.trainer.samples",
    ] {
        assert!(names.contains(&key), "missing instrumented key {key} in {names:?}");
    }

    // Sanity on the numbers: the epoch scope ran twice, its total fits
    // inside the observed wall-clock, and kernel self-times fit inside
    // the scope totals they nest in.
    let field = |name: &str, key: &str| -> f64 {
        stats
            .iter()
            .find(|s| s.get("name").and_then(serde::Value::as_str) == Some(name))
            .and_then(|s| s.get(key))
            .and_then(serde::Value::as_f64)
            .unwrap_or_else(|| panic!("{name}.{key} missing"))
    };
    assert_eq!(field("core.trainer.epoch", "calls"), 2.0);
    let epoch_total = field("core.trainer.epoch", "total_ns");
    assert!(epoch_total > 0.0 && epoch_total <= wall_ns as f64);
    assert!(field("tensor.conv2d", "self_ns") <= field("tensor.conv2d", "total_ns"));
    assert_eq!(field("core.trainer.epochs", "count"), 2.0);
    assert_eq!(
        field("core.trainer.samples", "count"),
        (2 * train.len()) as f64
    );
}
