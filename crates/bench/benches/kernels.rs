//! Compute-kernel microbenchmarks and the kernel-strategy ablations
//! called out in DESIGN.md: im2col convolution vs the naive sliding
//! window, blocked matmul vs the triple loop, and GLCM extraction cost
//! (the feature DeepSAT V2 pays for per image).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

use geotorch_raster::glcm::{Glcm, GlcmDirection};
use geotorch_tensor::ops::conv::{conv2d, conv2d_naive};
use geotorch_tensor::ops::matmul::matmul_naive;
use geotorch_tensor::Tensor;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(42)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let mut r = rng();
        let a = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut r);
        let b = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut r);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| matmul_naive(&a, &b));
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    for &(ch, size) in &[(3usize, 32usize), (13, 32), (3, 64)] {
        let mut r = rng();
        let x = Tensor::rand_uniform(&[4, ch, size, size], -1.0, 1.0, &mut r);
        let w = Tensor::rand_uniform(&[16, ch, 3, 3], -1.0, 1.0, &mut r);
        let label = format!("c{ch}_s{size}");
        group.bench_with_input(BenchmarkId::new("im2col", &label), &label, |bench, _| {
            bench.iter(|| conv2d(&x, &w, None, 1, 1));
        });
        group.bench_with_input(BenchmarkId::new("naive", &label), &label, |bench, _| {
            bench.iter(|| conv2d_naive(&x, &w, None, 1, 1));
        });
    }
    group.finish();
}

fn bench_glcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("glcm");
    group.sample_size(30);
    for &size in &[28usize, 64, 128] {
        let mut r = rng();
        let img = Tensor::rand_uniform(&[size * size], 0.0, 1.0, &mut r);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| {
                let g =
                    Glcm::compute(img.as_slice(), size, size, 16, GlcmDirection::East).unwrap();
                g.feature_vector()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_conv2d, bench_glcm);
criterion_main!(benches);
