//! Compute-kernel microbenchmarks and the kernel-strategy ablations
//! called out in DESIGN.md: im2col convolution vs the naive sliding
//! window, blocked matmul vs the triple loop, and GLCM extraction cost
//! (the feature DeepSAT V2 pays for per image).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

use geotorch_raster::glcm::{Glcm, GlcmDirection};
use geotorch_tensor::ops::conv::{conv2d, conv2d_direct, conv2d_im2col, conv2d_naive};
use geotorch_tensor::ops::matmul::{matmul_naive, simd_kernel_name};
use geotorch_tensor::ops::pool::maxpool2d;
use geotorch_tensor::{with_device, Device, Tensor};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(42)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let mut r = rng();
        let a = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut r);
        let b = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut r);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| matmul_naive(&a, &b));
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    for &(ch, size) in &[(3usize, 32usize), (13, 32), (3, 64)] {
        let mut r = rng();
        let x = Tensor::rand_uniform(&[4, ch, size, size], -1.0, 1.0, &mut r);
        let w = Tensor::rand_uniform(&[16, ch, 3, 3], -1.0, 1.0, &mut r);
        let label = format!("c{ch}_s{size}");
        group.bench_with_input(BenchmarkId::new("im2col", &label), &label, |bench, _| {
            bench.iter(|| conv2d(&x, &w, None, 1, 1));
        });
        group.bench_with_input(BenchmarkId::new("naive", &label), &label, |bench, _| {
            bench.iter(|| conv2d_naive(&x, &w, None, 1, 1));
        });
    }
    group.finish();
}

/// The packed cache-blocked SIMD GEMM at the paper-relevant square
/// sizes. The naive oracle is far too slow to sweep here (the `matmul`
/// group covers it at ≤ 128); this group tracks the fast kernel's
/// absolute cost so `results/` history shows GFLOP/s over time.
fn bench_kernel_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_matmul");
    group.sample_size(20);
    eprintln!("kernel_matmul: SIMD tier = {}", simd_kernel_name());
    for &n in &[256usize, 512, 1024] {
        let mut r = rng();
        let a = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut r);
        let b = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut r);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
    }
    group.finish();
}

/// Conv lowering ablation on fig9-shaped workloads: the direct
/// shift-and-axpy path vs explicit im2col + GEMM on 3×3/stride-1, and
/// the zero-copy implicit GEMM on 1×1.
fn bench_kernel_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_conv2d");
    group.sample_size(20);
    for &(ch, size) in &[(3usize, 32usize), (13, 32), (8, 64)] {
        let mut r = rng();
        let x = Tensor::rand_uniform(&[4, ch, size, size], -1.0, 1.0, &mut r);
        let w = Tensor::rand_uniform(&[16, ch, 3, 3], -1.0, 1.0, &mut r);
        let label = format!("c{ch}_s{size}");
        group.bench_with_input(BenchmarkId::new("direct", &label), &label, |bench, _| {
            bench.iter(|| conv2d_direct(&x, &w, None, 1));
        });
        group.bench_with_input(BenchmarkId::new("im2col", &label), &label, |bench, _| {
            bench.iter(|| conv2d_im2col(&x, &w, None, 1, 1));
        });
    }
    let mut r = rng();
    let x = Tensor::rand_uniform(&[4, 16, 32, 32], -1.0, 1.0, &mut r);
    let w = Tensor::rand_uniform(&[32, 16, 1, 1], -1.0, 1.0, &mut r);
    group.bench_with_input(BenchmarkId::new("implicit_1x1", "c16_s32"), &0, |bench, _| {
        bench.iter(|| conv2d(&x, &w, None, 1, 0));
    });
    group.finish();
}

fn bench_glcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("glcm");
    group.sample_size(30);
    for &size in &[28usize, 64, 128] {
        let mut r = rng();
        let img = Tensor::rand_uniform(&[size * size], 0.0, 1.0, &mut r);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| {
                let g =
                    Glcm::compute(img.as_slice(), size, size, 16, GlcmDirection::East).unwrap();
                g.feature_vector()
            });
        });
    }
    group.finish();
}

/// Cpu vs Parallel over the pooled kernels: large shapes should favour
/// `Device::parallel()`, while the small shapes measure per-dispatch
/// overhead of the persistent worker pool (no thread spawns per call).
fn bench_device(c: &mut Criterion) {
    let devices = [("cpu", Device::Cpu), ("parallel", Device::parallel())];

    let mut group = c.benchmark_group("device_matmul");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let mut r = rng();
        let a = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut r);
        let b = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut r);
        for (name, device) in devices {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
                bench.iter(|| with_device(device, || a.matmul(&b)));
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("device_conv2d");
    group.sample_size(20);
    let mut r = rng();
    let x = Tensor::rand_uniform(&[8, 8, 64, 64], -1.0, 1.0, &mut r);
    let w = Tensor::rand_uniform(&[16, 8, 3, 3], -1.0, 1.0, &mut r);
    for (name, device) in devices {
        group.bench_with_input(BenchmarkId::new(name, "b8c8s64"), &0, |bench, _| {
            bench.iter(|| with_device(device, || conv2d(&x, &w, None, 1, 1)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("device_pool_softmax_reduce");
    group.sample_size(20);
    let mut r = rng();
    let img = Tensor::rand_uniform(&[8, 16, 64, 64], -1.0, 1.0, &mut r);
    let logits = Tensor::rand_uniform(&[512, 1024], -1.0, 1.0, &mut r);
    for (name, device) in devices {
        group.bench_with_input(BenchmarkId::new(name, "maxpool"), &0, |bench, _| {
            bench.iter(|| with_device(device, || maxpool2d(&img, 2, 2)));
        });
        group.bench_with_input(BenchmarkId::new(name, "softmax"), &0, |bench, _| {
            bench.iter(|| with_device(device, || logits.softmax_lastdim()));
        });
        group.bench_with_input(BenchmarkId::new(name, "sum"), &0, |bench, _| {
            bench.iter(|| with_device(device, || img.sum()));
        });
    }
    group.finish();

    // Small tensors stay below PARALLEL_THRESHOLD: both devices should cost
    // the same because dispatch never reaches the pool.
    let mut group = c.benchmark_group("device_small_dispatch");
    group.sample_size(50);
    let mut r = rng();
    let small = Tensor::rand_uniform(&[64], -1.0, 1.0, &mut r);
    for (name, device) in devices {
        group.bench_with_input(BenchmarkId::new(name, "add64"), &0, |bench, _| {
            bench.iter(|| with_device(device, || small.add(&small)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv2d,
    bench_kernel_matmul,
    bench_kernel_conv2d,
    bench_glcm,
    bench_device
);
criterion_main!(benches);
