//! Preprocessing-pipeline benchmarks: the Figure-8 mechanism (fused
//! partitioned aggregation vs the materialising baseline), thread
//! scaling of the partitioned engine, and the offline raster transform
//! throughput behind Table VIII.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use geotorch_dataframe::exec::with_parallelism;
use geotorch_dataframe::{DataFrame, Envelope};
use geotorch_datasets::synth::TripGenerator;
use geotorch_preprocess::geopandas_like::get_st_grid_dataframe_naive;
use geotorch_preprocess::raster_processing::{RasterBatch, RasterProcessing};
use geotorch_preprocess::st_manager::{trips_dataframe, StGridConfig, StManager};
use geotorch_raster::transforms::AppendNormalizedDifferenceIndex;
use geotorch_raster::Raster;

fn trips(n: usize) -> (DataFrame, StGridConfig) {
    let generator = TripGenerator::nyc_like(9);
    let records = generator.generate(n);
    let (min_lon, min_lat, max_lon, max_lat) = generator.extent();
    let df = trips_dataframe(
        records.iter().map(|t| t.pickup_lat).collect(),
        records.iter().map(|t| t.pickup_lon).collect(),
        records.iter().map(|t| t.timestamp).collect(),
    )
    .unwrap();
    let config = StGridConfig {
        partitions_x: 12,
        partitions_y: 16,
        step_duration_sec: 1800,
        extent: Some(Envelope::new(min_lon, min_lat, max_lon, max_lat)),
    };
    (df, config)
}

fn bench_st_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("st_tensor_prep");
    group.sample_size(10);
    for &n in &[50_000usize, 200_000] {
        let (df, config) = trips(n);
        let partitioned = df.repartition(8).unwrap();
        group.bench_with_input(BenchmarkId::new("fused_partitioned", n), &n, |bench, _| {
            bench.iter(|| {
                StManager::get_st_grid_array(&partitioned, "lat", "lon", "ts", &config).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("naive_baseline", n), &n, |bench, _| {
            bench.iter(|| {
                get_st_grid_dataframe_naive(&df, "lat", "lon", "ts", &config).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("st_thread_scaling");
    group.sample_size(10);
    let (df, config) = trips(200_000);
    let partitioned = df.repartition(8).unwrap();
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, &t| {
                bench.iter(|| {
                    with_parallelism(t, || {
                        StManager::get_st_grid_array(&partitioned, "lat", "lon", "ts", &config)
                            .unwrap()
                    })
                });
            },
        );
    }
    group.finish();
}

fn bench_raster_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("raster_transform_batch");
    group.sample_size(10);
    let images: Vec<Raster> = (0..32)
        .map(|i| {
            Raster::new(
                (0..4 * 64 * 64).map(|v| ((v + i) % 97) as f32 / 97.0).collect(),
                4,
                64,
                64,
            )
            .unwrap()
        })
        .collect();
    let batch = RasterBatch::from_rasters(images);
    let transform = AppendNormalizedDifferenceIndex::new(0, 1);
    group.bench_function("append_ndi_32x64x64", |bench| {
        bench.iter(|| RasterProcessing::transform(&batch, &transform).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_st_pipeline, bench_thread_scaling, bench_raster_transform);
criterion_main!(benches);
