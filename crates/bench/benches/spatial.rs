//! Spatial-operator benchmarks: the STR-tree join vs brute force (why
//! Sedona-style indexing matters), the uniform-grid fast path vs the
//! generic zone join, and hash group-by throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;

use geotorch_dataframe::groupby::Agg;
use geotorch_dataframe::rtree::StrTree;
use geotorch_dataframe::spatial::{
    add_point_column, assign_grid_cells, join_points_to_zones, join_points_to_zones_brute,
    UniformGrid,
};
use geotorch_dataframe::{Column, DataFrame, Envelope, Point};

fn points_df(n: usize, seed: u64) -> DataFrame {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let lats: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..16.0)).collect();
    let lons: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..12.0)).collect();
    let df = DataFrame::from_columns(vec![
        ("lat".into(), Column::F64(lats)),
        ("lon".into(), Column::F64(lons)),
    ])
    .unwrap();
    add_point_column(&df, "lat", "lon", "pt").unwrap()
}

fn bench_zone_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("zone_join");
    group.sample_size(10);
    let grid = UniformGrid::new(Envelope::new(0.0, 0.0, 12.0, 16.0), 12, 16).unwrap();
    let zones = grid.cell_geometries();
    for &n in &[1_000usize, 10_000] {
        let df = points_df(n, 1);
        group.bench_with_input(BenchmarkId::new("rtree", n), &n, |bench, _| {
            bench.iter(|| join_points_to_zones(&df, "pt", &zones, "z").unwrap());
        });
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |bench, _| {
            bench.iter(|| join_points_to_zones_brute(&df, "pt", &zones, "z").unwrap());
        });
        group.bench_with_input(BenchmarkId::new("grid_fastpath", n), &n, |bench, _| {
            bench.iter(|| assign_grid_cells(&df, "pt", &grid, "z").unwrap());
        });
    }
    group.finish();
}

fn bench_rtree_build_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let grid_side = (n as f64).sqrt() as usize;
        let cells: Vec<Envelope> = (0..n)
            .map(|i| {
                let (r, col) = (i / grid_side, i % grid_side);
                Envelope::new(col as f64, r as f64, col as f64 + 1.0, r as f64 + 1.0)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("build", n), &n, |bench, _| {
            bench.iter(|| StrTree::build(&cells));
        });
        let tree = StrTree::build(&cells);
        group.bench_with_input(BenchmarkId::new("query_point", n), &n, |bench, _| {
            let p = Point::new(grid_side as f64 / 2.0 + 0.5, grid_side as f64 / 2.0 + 0.5);
            bench.iter(|| tree.query_point(&p));
        });
    }
    group.finish();
}

fn bench_groupby(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupby");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..256)).collect();
        let values: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let df = DataFrame::from_columns(vec![
            ("k".into(), Column::I64(keys)),
            ("v".into(), Column::F64(values)),
        ])
        .unwrap()
        .repartition(4)
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                df.group_by(
                    &["k"],
                    &[Agg::Count("n".into()), Agg::Sum("v".into(), "s".into())],
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_zone_join, bench_rtree_build_query, bench_groupby);
criterion_main!(benches);
