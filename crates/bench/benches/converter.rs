//! DFtoTorch converter benchmarks: streaming per-partition batching vs
//! the collect-then-batch strategy §III-C warns about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;

use geotorch_converter::{collect_then_batch, DfFormatter, RowTransformer};
use geotorch_dataframe::{Column, DataFrame};
use geotorch_tensor::{with_device, Device};

fn feature_df(rows: usize, partitions: usize) -> DataFrame {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let a: Vec<f64> = (0..rows).map(|_| rng.gen()).collect();
    let b: Vec<f64> = (0..rows).map(|_| rng.gen()).collect();
    let c: Vec<f64> = (0..rows).map(|_| rng.gen()).collect();
    let y: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..4)).collect();
    DataFrame::from_columns(vec![
        ("a".into(), Column::F64(a)),
        ("b".into(), Column::F64(b)),
        ("c".into(), Column::F64(c)),
        ("y".into(), Column::I64(y)),
    ])
    .unwrap()
    .repartition(partitions)
    .unwrap()
}

fn bench_converter(c: &mut Criterion) {
    let mut group = c.benchmark_group("df_to_torch");
    group.sample_size(10);
    for &rows in &[10_000usize, 100_000] {
        let df = feature_df(rows, 8);
        let formatter = DfFormatter::for_classification(&["a", "b", "c"], &[3], "y").unwrap();
        group.bench_with_input(BenchmarkId::new("format", rows), &rows, |bench, _| {
            bench.iter(|| formatter.format(&df).unwrap());
        });
        let frame = formatter.format(&df).unwrap();
        group.bench_with_input(BenchmarkId::new("stream_batches", rows), &rows, |bench, _| {
            let rt = RowTransformer::new(256);
            bench.iter(|| rt.batches(&frame).count());
        });
        group.bench_with_input(
            BenchmarkId::new("collect_then_batch", rows),
            &rows,
            |bench, _| {
                bench.iter(|| collect_then_batch(&frame, 256).len());
            },
        );
        // Batched DF→Tensor conversion on the device worker pool vs serial.
        for (name, device) in [
            ("all_batches_cpu", Device::Cpu),
            ("all_batches_parallel", Device::parallel()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, rows), &rows, |bench, _| {
                let rt = RowTransformer::new(256);
                bench.iter(|| with_device(device, || rt.all_batches(&frame).len()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_converter);
criterion_main!(benches);
