//! Registry behaviour: eval-mode guarantees and checkpoint validation.

use std::path::PathBuf;

use geotorch_nn::layers::BatchNorm2d;
use geotorch_nn::{Layer, Module, Var};
use geotorch_serve::{BatchConfig, Registry, ServeError, ServeModel};
use geotorch_tensor::{Device, Tensor};

fn cpu_config() -> BatchConfig {
    BatchConfig {
        max_batch: 4,
        max_wait_ms: 5,
        device: Device::Cpu,
        ..BatchConfig::default()
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("geotorch_serve_{}_{name}.json", std::process::id()))
}

/// A one-layer model whose output depends on whether BatchNorm runs in
/// training mode (batch statistics) or eval mode (running statistics).
struct BnNet {
    bn: BatchNorm2d,
}

impl BnNet {
    fn new() -> BnNet {
        let bn = BatchNorm2d::new(1);
        // Distinctive running stats: eval output is (x - 2) / sqrt(4 + eps),
        // nothing like the batch-statistics normalisation of train mode.
        bn.set_running_stats(
            Tensor::from_vec(vec![2.0], &[1]),
            Tensor::from_vec(vec![4.0], &[1]),
        );
        BnNet { bn }
    }
}

impl Module for BnNet {
    fn parameters(&self) -> Vec<Var> {
        self.bn.parameters()
    }
    fn set_training(&self, training: bool) {
        self.bn.set_training(training);
    }
}

impl ServeModel for BnNet {
    fn predict(&self, batch: &Var) -> Var {
        self.bn.forward(batch)
    }
}

#[test]
fn served_batchnorm_uses_running_stats_not_batch_stats() {
    let sample = Tensor::from_vec(vec![0.0, 4.0, 8.0, 12.0], &[1, 2, 2]);

    // Local reference, explicitly in eval mode.
    let local = BnNet::new();
    local.set_training(false);
    let expected = local
        .predict(&Var::constant(sample.reshape(&[1, 1, 2, 2])))
        .value()
        .index_axis(0, 0);

    // Same input in train mode normalises by the batch's own statistics
    // — the failure mode this test guards against.
    let train_model = BnNet::new();
    train_model.set_training(true);
    let train_output = train_model
        .predict(&Var::constant(sample.reshape(&[1, 1, 2, 2])))
        .value()
        .index_axis(0, 0);
    assert!(
        !expected.allclose(&train_output, 1e-3),
        "test is vacuous: train and eval outputs coincide"
    );

    // Freshly-built BatchNorm layers default to training mode; the
    // registry/worker must flip the served model to eval before the
    // first request.
    let mut registry = Registry::new();
    registry.register("bn", None, || Box::new(BnNet::new()) as Box<dyn ServeModel>);
    let workers = registry.spawn_all(cpu_config()).expect("spawn");
    let served = workers["bn"].client().predict(sample).expect("predict");

    assert_eq!(
        served.as_slice(),
        expected.as_slice(),
        "served model must normalise with running statistics (eval mode)"
    );
    // Hand-checked: (x - mean) / sqrt(var + eps) with mean=2, var=4.
    let eps = 1e-5f32;
    let denom = (4.0f32 + eps).sqrt();
    for (got, &x) in served.as_slice().iter().zip(&[0.0f32, 4.0, 8.0, 12.0]) {
        assert!((got - (x - 2.0) / denom).abs() < 1e-5);
    }
}

#[test]
fn wrong_architecture_checkpoint_aborts_spawn() {
    let path = temp_path("wrong_arch");
    // Checkpoint a model with one [1]-shaped parameter set...
    let donor = BnNet::new();
    geotorch_core::checkpoint::save_named(&donor, "other-model", &path).expect("save");

    // ...then try to serve it under a different registered name.
    let mut registry = Registry::new();
    registry.register("bn", Some(path.clone()), || {
        Box::new(BnNet::new()) as Box<dyn ServeModel>
    });
    let err = registry
        .spawn_all(cpu_config())
        .expect_err("name mismatch must abort startup");
    assert!(
        matches!(&err, ServeError::ModelLoad(msg) if msg.contains("other-model")),
        "expected a ModelLoad error naming the saved model, got {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn matching_checkpoint_restores_weights_through_registry() {
    let path = temp_path("roundtrip");
    let donor = BnNet::new();
    // Perturb the learned affine so the checkpoint differs from a fresh
    // build; running stats ride along as parameters too.
    let params = donor.parameters();
    params[0].assign(Tensor::from_vec(vec![3.0], &[1]));
    geotorch_core::checkpoint::save_named(&donor, "bn", &path).expect("save");

    let mut registry = Registry::new();
    registry.register("bn", Some(path.clone()), || {
        Box::new(BnNet::new()) as Box<dyn ServeModel>
    });
    let workers = registry.spawn_all(cpu_config()).expect("spawn");
    let sample = Tensor::from_vec(vec![0.0, 4.0, 8.0, 12.0], &[1, 2, 2]);
    let served = workers["bn"].client().predict(sample.clone()).expect("predict");

    donor.set_training(false);
    let expected = donor
        .predict(&Var::constant(sample.reshape(&[1, 1, 2, 2])))
        .value()
        .index_axis(0, 0);
    assert_eq!(served.as_slice(), expected.as_slice());
    std::fs::remove_file(&path).ok();
}
