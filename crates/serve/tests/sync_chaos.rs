//! Chaos tests for the replicated-registry sync path: inject seeded
//! faults into every window of a pull — manifest fetch, tensor fetch,
//! apply, and the replica hot-swap — and prove a failed sync leaves the
//! old model serving **byte-identically**, while a retry after the
//! fault clears converges both nodes to the same head (bit-identical
//! stores) with zero dropped requests.
//!
//! The fault registry is process-global; every test takes `serial()`.
//! `GEOTORCH_CHAOS_SEED` (CI sweeps 1–3) seeds the fault plans.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use geotorch_core::Manifest;
use geotorch_models::raster::SatCnn;
use geotorch_nn::Module;
use geotorch_serve::{BatchConfig, Registry, ServeConfig, Server};
use geotorch_tensor::{Device, Tensor};
use geotorch_telemetry::fault::{self, FaultAction, FaultPlan};
use rand::SeedableRng;

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn chaos_seed() -> u64 {
    std::env::var("GEOTORCH_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn store_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "geotorch_sync_chaos_{}_{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Both nodes build the same deterministic model, so their seeded store
/// heads are identical manifests (same content hash → same id) before
/// any publish happens.
fn satcnn() -> SatCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    SatCnn::new(2, 8, 8, 3, &mut rng)
}

fn start_node(dir: &Path, replicas: usize) -> Server {
    let mut registry = Registry::new();
    registry.register_classifier("satcnn", None, satcnn);
    assert!(registry.enable_sync("satcnn", dir.to_path_buf()));
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 1,
            device: Device::Cpu,
            replicas,
            ..BatchConfig::default()
        },
        http_workers: 2,
        enable_telemetry: true,
        ..ServeConfig::default()
    };
    Server::start("127.0.0.1:0", registry, config).expect("node starts")
}

fn sample() -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    Tensor::rand_uniform(&[2, 8, 8], 0.0, 1.0, &mut rng)
}

/// One in-process prediction: output row + the version label it carried.
fn predict(server: &Server) -> (Vec<f32>, String) {
    let client = server.client("satcnn").expect("client");
    let (out, version) = client
        .predict_versioned(sample(), None)
        .expect("predict succeeds");
    (out.as_slice().to_vec(), version.to_string())
}

/// A fine-tuned state dict: the seeded weights with only the last
/// parameter (the classifier head bias) changed — the delta-sync
/// sweet spot.
fn fine_tuned(factor: f32) -> Vec<Tensor> {
    let mut state = satcnn().state_dict();
    let last = state.len() - 1;
    state[last] = state[last].add_scalar(factor);
    state
}

/// Both stores must hold bit-identical head manifests and, for every
/// entry the head references, bit-identical payload files.
fn assert_stores_bit_identical(dir_a: &Path, dir_b: &Path) {
    let head_a = std::fs::read(dir_a.join("head.json")).expect("node A head");
    let head_b = std::fs::read(dir_b.join("head.json")).expect("node B head");
    assert_eq!(head_a, head_b, "head manifests must be byte-identical");
    let manifest =
        Manifest::from_json(std::str::from_utf8(&head_a).unwrap()).expect("head parses");
    for (i, entry) in manifest.entries.iter().enumerate() {
        let name = format!("t{i}@{}-{}.json", entry.ver, entry.hash);
        let a = std::fs::read(dir_a.join(&name)).expect("payload on A");
        let b = std::fs::read(dir_b.join(&name)).expect("payload on B");
        assert_eq!(a, b, "payload {name} must be byte-identical on both nodes");
    }
}

#[test]
fn failed_fetch_or_apply_leaves_old_model_serving_and_retry_converges() {
    let _g = serial();
    for point in [
        "registry.sync.manifest",
        "registry.sync.tensor",
        "registry.sync.apply",
    ] {
        let dir_a = store_dir(&format!("a_{}", point.replace('.', "_")));
        let dir_b = store_dir(&format!("b_{}", point.replace('.', "_")));
        let node_a = start_node(&dir_a, 1);
        let node_b = start_node(&dir_b, 1);
        let peer = node_a.addr().to_string();

        // Seeded heads are identical before any publish.
        assert_eq!(node_a.head_id("satcnn"), node_b.head_id("satcnn"));
        let (golden_out, golden_version) = predict(&node_b);

        // Fine-tune on A: only the head bias changes.
        let report = node_a
            .publish("satcnn", &fine_tuned(1.5))
            .expect("publish on A");
        assert_eq!(report.changed.len(), 1, "only one tensor changed");
        let new_id = report.id.clone();

        // A failed pull must not move B's head, and B must keep serving
        // the old weights byte-identically under the old version label.
        fault::install(FaultPlan::new(chaos_seed()).always(
            point,
            FaultAction::Error("peer unreachable".into()),
        ));
        let err = node_b
            .sync_from("satcnn", &peer)
            .expect_err("injected fault must fail the sync");
        assert!(
            err.to_string().contains("injected"),
            "{point}: unexpected error {err}"
        );
        fault::clear();
        assert_eq!(
            node_b.head_id("satcnn"),
            Some(golden_version.clone()),
            "{point}: a failed sync must not move the head"
        );
        let (out, version) = predict(&node_b);
        assert_eq!(out, golden_out, "{point}: old weights must serve byte-identically");
        assert_eq!(version, golden_version, "{point}: old label must still apply");

        // The retry converges: same head id on both nodes, fetched bytes
        // proportional to the one changed tensor, bit-identical stores.
        let report = node_b.sync_from("satcnn", &peer).expect("retry succeeds");
        assert!(report.advanced);
        assert_eq!(report.id, new_id);
        assert_eq!(
            report.fetched.len(),
            1,
            "{point}: only the changed tensor is fetched"
        );
        assert_eq!(node_b.head_id("satcnn"), node_a.head_id("satcnn"));
        let (out_b, version_b) = predict(&node_b);
        let (out_a, version_a) = predict(&node_a);
        assert_eq!(version_a, new_id);
        assert_eq!(version_b, new_id, "{point}: replies carry the new label");
        assert_eq!(out_b, out_a, "{point}: both nodes serve the new weights");
        assert_stores_bit_identical(&dir_a, &dir_b);

        node_a.shutdown();
        node_b.shutdown();
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}

#[test]
fn failed_swap_keeps_old_weights_serving_until_retry_applies() {
    let _g = serial();
    let dir_a = store_dir("a_swap");
    let dir_b = store_dir("b_swap");
    let node_a = start_node(&dir_a, 2);
    let node_b = start_node(&dir_b, 2);
    let peer = node_a.addr().to_string();
    let (golden_out, golden_version) = predict(&node_b);

    let report = node_a
        .publish("satcnn", &fine_tuned(0.5))
        .expect("publish on A");
    let new_id = report.id.clone();
    let (new_out, _) = predict(&node_a);

    // The pull itself succeeds (store advances), but every replica's
    // swap window fails — so the *old* weights keep serving, still
    // labelled with the old id: every response stays attributable to
    // the weights that actually produced it.
    fault::install(FaultPlan::new(chaos_seed()).always(
        "registry.sync.swap",
        FaultAction::Error("swap window crashed".into()),
    ));
    let report = node_b.sync_from("satcnn", &peer).expect("sync applies");
    assert!(report.advanced);
    assert_eq!(node_b.head_id("satcnn"), Some(new_id.clone()));
    let (out, version) = predict(&node_b);
    assert_eq!(
        (out, version),
        (golden_out.clone(), golden_version.clone()),
        "a failed swap must leave the old weights serving under the old label"
    );

    // Clear the fault: each replica retries the pending swap before its
    // next batch, with no republish needed. Requests issued while the
    // swap propagates are answered (never dropped) by exactly one of
    // the two weight sets, consistently labelled.
    fault::clear();
    let mut converged = false;
    for _ in 0..50 {
        let (out, version) = predict(&node_b);
        if version == new_id {
            assert_eq!(out, new_out, "new label must mean new weights");
            converged = true;
            break;
        }
        assert_eq!(
            (out, version.as_str()),
            (golden_out.clone(), golden_version.as_str()),
            "old label must mean old weights"
        );
    }
    assert!(converged, "replicas must converge to the new weights");

    node_a.shutdown();
    node_b.shutdown();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn concurrent_publishes_converge_to_one_head_on_both_nodes() {
    let _g = serial();
    let dir_a = store_dir("a_conc");
    let dir_b = store_dir("b_conc");
    let node_a = start_node(&dir_a, 1);
    let node_b = start_node(&dir_b, 1);

    // Divergent fine-tunes published on both sides before any sync.
    node_a.publish("satcnn", &fine_tuned(2.0)).expect("publish A");
    node_b.publish("satcnn", &fine_tuned(3.0)).expect("publish B");
    assert_ne!(node_a.head_id("satcnn"), node_b.head_id("satcnn"));

    // One pull in each direction settles both nodes on the same merge
    // head — the deterministic symmetric tiebreak needs no coordinator.
    node_b
        .sync_from("satcnn", &node_a.addr().to_string())
        .expect("B pulls A");
    node_a
        .sync_from("satcnn", &node_b.addr().to_string())
        .expect("A pulls B");
    assert_eq!(node_a.head_id("satcnn"), node_b.head_id("satcnn"));
    let (out_a, ver_a) = predict(&node_a);
    let (out_b, ver_b) = predict(&node_b);
    assert_eq!(ver_a, ver_b);
    assert_eq!(out_a, out_b, "converged nodes must serve identical weights");
    assert_stores_bit_identical(&dir_a, &dir_b);

    node_a.shutdown();
    node_b.shutdown();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
