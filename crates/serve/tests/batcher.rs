//! Scheduler correctness: batched serving must be indistinguishable
//! from one-at-a-time no-grad forwards, regardless of how requests
//! interleave or how ragged their shapes are.

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use geotorch_models::raster::Fcn;
use geotorch_models::Segmenter;
use geotorch_nn::{no_grad, Module, Var};
use geotorch_serve::{BatchConfig, ModelWorker, SegmenterServe, ServeModel};
use geotorch_tensor::{Device, Tensor};
use rand::SeedableRng;

fn cpu_config(max_batch: usize, max_wait_ms: u64) -> BatchConfig {
    BatchConfig {
        max_batch,
        max_wait_ms,
        device: Device::Cpu,
        ..BatchConfig::default()
    }
}

fn fcn() -> Fcn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    Fcn::new(2, 1, 4, &mut rng)
}

/// Sample-shaped inputs with *ragged* spatial extents (all divisible by
/// 8 for the FCN), deterministic per index.
fn ragged_samples(n: usize) -> Vec<Tensor> {
    let sizes = [(16, 16), (24, 16), (16, 24), (32, 32)];
    (0..n)
        .map(|i| {
            let (h, w) = sizes[i % sizes.len()];
            let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + i as u64);
            Tensor::rand_uniform(&[2, h, w], -1.0, 1.0, &mut rng)
        })
        .collect()
}

#[test]
fn concurrent_ragged_requests_match_sequential_no_grad_forwards() {
    const K: usize = 12;
    let samples = ragged_samples(K);

    // Reference: the same model (same seed), eval mode, one no-grad
    // forward per sample with an explicit batch axis of 1.
    let reference_model = fcn();
    reference_model.set_training(false);
    let expected: Vec<Tensor> = samples
        .iter()
        .map(|s| {
            let mut shape = vec![1];
            shape.extend_from_slice(s.shape());
            let x = Var::constant(s.reshape(&shape));
            no_grad(|| reference_model.forward(&x).value().index_axis(0, 0))
        })
        .collect();

    let worker = ModelWorker::spawn("fcn", cpu_config(8, 20), || {
        Ok(Box::new(SegmenterServe(fcn())) as Box<dyn ServeModel>)
    })
    .expect("worker starts");

    // Fire all K requests at once so the scheduler actually has to
    // batch and shape-partition them.
    let barrier = Arc::new(Barrier::new(K));
    let results: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = samples
            .iter()
            .map(|sample| {
                let client = worker.client();
                let barrier = Arc::clone(&barrier);
                let sample = sample.clone();
                scope.spawn(move || {
                    barrier.wait();
                    client.predict(sample).expect("prediction succeeds")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (got, want)) in results.iter().zip(&expected).enumerate() {
        assert_eq!(got.shape(), want.shape(), "request {i} shape");
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "request {i}: batched output must be byte-identical to a sequential forward"
        );
    }
    worker.shutdown();
}

#[test]
fn parallel_device_batches_match_cpu_sequential() {
    const K: usize = 6;
    let samples = ragged_samples(K);
    let reference_model = fcn();
    reference_model.set_training(false);
    let expected: Vec<Tensor> = samples
        .iter()
        .map(|s| {
            let mut shape = vec![1];
            shape.extend_from_slice(s.shape());
            let x = Var::constant(s.reshape(&shape));
            no_grad(|| reference_model.forward(&x).value().index_axis(0, 0))
        })
        .collect();

    let config = BatchConfig {
        max_batch: 8,
        max_wait_ms: 20,
        device: Device::Parallel(4),
        ..BatchConfig::default()
    };
    let worker = ModelWorker::spawn("fcn-par", config, || {
        Ok(Box::new(SegmenterServe(fcn())) as Box<dyn ServeModel>)
    })
    .expect("worker starts");
    let results: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = samples
            .iter()
            .map(|sample| {
                let client = worker.client();
                let sample = sample.clone();
                scope.spawn(move || client.predict(sample).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (got, want) in results.iter().zip(&expected) {
        assert!(
            got.allclose(want, 1e-6),
            "Device::Parallel serving must match serial evaluation"
        );
    }
}

/// A trivial model that logs every forward's batch size, for observing
/// the scheduler's grouping decisions.
struct Doubler {
    log: Arc<Mutex<Vec<usize>>>,
}

impl Module for Doubler {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for Doubler {
    fn predict(&self, batch: &Var) -> Var {
        self.log
            .lock()
            .unwrap()
            .push(batch.shape()[0]);
        batch.mul_scalar(2.0)
    }
}

#[test]
fn max_wait_flushes_a_partial_batch() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let log_clone = Arc::clone(&log);
    // max_batch far larger than the traffic: only the timer can flush.
    let worker = ModelWorker::spawn("doubler", cpu_config(64, 30), move || {
        Ok(Box::new(Doubler { log: Arc::clone(&log_clone) }) as Box<dyn ServeModel>)
    })
    .expect("worker starts");
    let client = worker.client();
    let start = Instant::now();
    let out = client
        .predict(Tensor::from_vec(vec![1.0, 2.0], &[2]))
        .expect("single request must not hang");
    let elapsed = start.elapsed();
    assert_eq!(out.as_slice(), &[2.0, 4.0]);
    assert!(
        elapsed < Duration::from_secs(5),
        "partial batch must flush at max_wait_ms, took {elapsed:?}"
    );
    assert_eq!(
        log.lock().unwrap().as_slice(),
        &[1],
        "exactly one forward with batch size 1"
    );
    worker.shutdown();
}

#[test]
fn concurrent_requests_get_stacked() {
    const K: usize = 8;
    let log = Arc::new(Mutex::new(Vec::new()));
    let log_clone = Arc::clone(&log);
    let worker = ModelWorker::spawn("doubler", cpu_config(K, 500), move || {
        Ok(Box::new(Doubler { log: Arc::clone(&log_clone) }) as Box<dyn ServeModel>)
    })
    .expect("worker starts");

    let barrier = Arc::new(Barrier::new(K));
    std::thread::scope(|scope| {
        for i in 0..K {
            let client = worker.client();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                let out = client
                    .predict(Tensor::from_vec(vec![i as f32], &[1]))
                    .unwrap();
                assert_eq!(out.as_slice(), &[2.0 * i as f32], "scatter order");
            });
        }
    });
    worker.shutdown();

    let batches = log.lock().unwrap().clone();
    assert_eq!(batches.iter().sum::<usize>(), K, "every request served once");
    assert!(
        batches.len() < K,
        "near-simultaneous requests must share forwards, got batch sizes {batches:?}"
    );
    assert!(
        batches.iter().all(|&b| b <= K),
        "max_batch respected: {batches:?}"
    );
}

#[test]
fn max_batch_one_serves_every_request_alone() {
    const K: usize = 5;
    let log = Arc::new(Mutex::new(Vec::new()));
    let log_clone = Arc::clone(&log);
    let worker = ModelWorker::spawn("doubler", cpu_config(1, 50), move || {
        Ok(Box::new(Doubler { log: Arc::clone(&log_clone) }) as Box<dyn ServeModel>)
    })
    .expect("worker starts");
    std::thread::scope(|scope| {
        for i in 0..K {
            let client = worker.client();
            scope.spawn(move || {
                client
                    .predict(Tensor::from_vec(vec![i as f32], &[1]))
                    .unwrap();
            });
        }
    });
    worker.shutdown();
    let batches = log.lock().unwrap().clone();
    assert_eq!(batches, vec![1; K], "max_batch=1 disables stacking");
}

#[test]
fn init_failure_propagates_out_of_spawn() {
    let result = ModelWorker::spawn("broken", cpu_config(4, 5), || {
        Err(geotorch_serve::ServeError::ModelLoad("bad checkpoint".into()))
    });
    match result {
        Err(geotorch_serve::ServeError::ModelLoad(_)) => {}
        Err(other) => panic!("expected ModelLoad, got {other}"),
        Ok(_) => panic!("init error must surface"),
    }
}

#[test]
fn forward_panic_becomes_an_error_and_worker_survives() {
    struct Panicker;
    impl Module for Panicker {
        fn parameters(&self) -> Vec<Var> {
            Vec::new()
        }
    }
    impl ServeModel for Panicker {
        fn predict(&self, batch: &Var) -> Var {
            if batch.shape().contains(&13) {
                panic!("unlucky shape");
            }
            batch.mul_scalar(1.0)
        }
    }
    let worker = ModelWorker::spawn("panicker", cpu_config(1, 5), || {
        Ok(Box::new(Panicker) as Box<dyn ServeModel>)
    })
    .expect("worker starts");
    let client = worker.client();
    let err = client
        .predict(Tensor::zeros(&[13]))
        .expect_err("panic must become an error");
    assert!(matches!(err, geotorch_serve::ServeError::Internal(_)));
    // The worker thread must still be alive to serve the next request.
    let ok = client.predict(Tensor::from_vec(vec![5.0], &[1])).unwrap();
    assert_eq!(ok.as_slice(), &[5.0]);
    worker.shutdown();
}
