//! The CI smoke path: train a tiny model, checkpoint it, serve it over
//! HTTP on an ephemeral port, and round-trip a prediction plus the
//! metrics endpoint — the same sequence the CI job runs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use geotorch_core::checkpoint;
use geotorch_core::trainer::{TrainConfig, Trainer, UpdateMode};
use geotorch_datasets::{shuffled_split, RasterDataset};
use geotorch_models::raster::SatCnn;
use geotorch_models::RasterClassifier;
use geotorch_nn::{no_grad, Module, Var};
use geotorch_serve::{BatchConfig, Registry, Server, ServeConfig};
use geotorch_tensor::{Device, Tensor};
use rand::SeedableRng;
use serde::Value;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("geotorch_smoke_{}_{name}.json", std::process::id()))
}

fn satcnn() -> SatCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    SatCnn::new(3, 16, 16, 3, &mut rng)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 2,
            device: Device::Cpu,
            ..BatchConfig::default()
        },
        http_workers: 2,
        enable_telemetry: true,
        ..ServeConfig::default()
    }
}

/// Minimal HTTP/1.1 client over a raw socket: one request, one response.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, payload.to_string())
}

#[test]
fn train_checkpoint_serve_roundtrip() {
    // 1. Train one epoch on a tiny synthetic raster dataset.
    let dataset = RasterDataset::classification("smoke", 3, 16, 16, 3, 4, 0);
    let model = satcnn();
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 4,
        learning_rate: 1e-3,
        early_stopping_patience: None,
        update_mode: UpdateMode::Incremental,
        gradient_clip: None,
        seed: 0,
        device: Device::Cpu,
        replicas: 1,
    });
    let (train, val, _) = shuffled_split(dataset.len(), 0);
    trainer.fit_classifier(&model, &dataset, &train, &val);

    // 2. Checkpoint with the v1 named header.
    let ckpt = temp_path("satcnn");
    checkpoint::save_named(&model, "satcnn", &ckpt).expect("save");

    // 3. Serve it from the checkpoint on an ephemeral port.
    let mut registry = Registry::new();
    let ckpt_clone = ckpt.clone();
    registry.register_classifier("satcnn", Some(ckpt_clone), satcnn);
    let server = Server::start("127.0.0.1:0", registry, serve_config()).expect("server starts");
    let addr = server.addr();

    // 4. /healthz names the served model.
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz: {body}");
    let health: Value = serde_json::from_str(&body).expect("healthz is JSON");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    let models = health
        .get("models")
        .and_then(Value::as_array)
        .expect("models array");
    assert!(models.iter().any(|m| m.as_str() == Some("satcnn")));

    // 5. /predict round-trips and matches a local no-grad forward of the
    //    trained model.
    let (sample, _, _) = dataset.get(0);
    let payload = serde_json::to_string(&sample).expect("serialize sample");
    let (status, body) = http(addr, "POST", "/predict/satcnn", &payload);
    assert_eq!(status, 200, "predict: {body}");
    let response: Value = serde_json::from_str(&body).expect("prediction is JSON");
    assert_eq!(
        response.get("model").and_then(Value::as_str),
        Some("satcnn")
    );
    let served: Tensor =
        serde_json::from_str(&body).expect("prediction payload embeds a tensor");
    model.set_training(false);
    let expected = no_grad(|| {
        model
            .forward(&Var::constant(sample.reshape(&[1, 3, 16, 16])), None)
            .value()
            .index_axis(0, 0)
    });
    assert_eq!(served.shape(), expected.shape());
    assert_eq!(
        served.as_slice(),
        expected.as_slice(),
        "served logits must match a local eval forward of the trained weights"
    );

    // 6. /metrics parses and reports the serve.* stats.
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics: Value = serde_json::from_str(&body).expect("metrics is JSON");
    let names: Vec<&str> = metrics
        .get("stats")
        .and_then(Value::as_array)
        .expect("stats array")
        .iter()
        .map(|s| s.get("name").and_then(Value::as_str).expect("stat name"))
        .collect();
    for key in [
        "serve.requests",
        "serve.batches",
        "serve.batch_size",
        "serve.queue_wait",
        "serve.http.requests",
        "serve.model.satcnn",
        // Tensor-allocator gauges ride along in every snapshot, so an
        // operator can watch pool behaviour straight from /metrics.
        "alloc.pool_hit",
        "alloc.pool_miss",
        "alloc.bytes",
        "alloc.bytes_in_use",
        "alloc.high_water_bytes",
        "alloc.pooled_bytes",
    ] {
        assert!(names.contains(&key), "missing {key} in {names:?}");
    }

    // 7. Error paths: unknown model → 404, malformed tensor → 400.
    let (status, _) = http(addr, "POST", "/predict/nope", &payload);
    assert_eq!(status, 404);
    let (status, _) = http(addr, "POST", "/predict/satcnn", "{\"shape\": [2]}");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);

    server.shutdown();
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn disarmed_fault_points_add_no_measurable_latency_to_serving() {
    // The serve path is sprinkled with fault points; with no plan
    // installed each one must stay a single atomic load. A regression
    // (lock, allocation, clock read) would blow this bound by orders of
    // magnitude.
    assert!(!geotorch_telemetry::fault::armed());
    let started = std::time::Instant::now();
    for _ in 0..1_000_000 {
        let _ = geotorch_telemetry::fault_point!("serve.batcher.forward");
    }
    assert!(
        started.elapsed() < std::time::Duration::from_millis(500),
        "1M disarmed fault points took {:?}",
        started.elapsed()
    );
}

#[test]
fn server_refuses_to_start_on_wrong_architecture_checkpoint() {
    // A checkpoint from a *different* architecture (and name) must abort
    // Server::start with an error, never a panic.
    let ckpt = temp_path("wrong");
    let donor = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        geotorch_models::raster::Fcn::new(2, 1, 4, &mut rng)
    };
    checkpoint::save_named(&donor, "fcn", &ckpt).expect("save");

    let mut registry = Registry::new();
    let ckpt_clone = ckpt.clone();
    registry.register_classifier("satcnn", Some(ckpt_clone), satcnn);
    let result = Server::start("127.0.0.1:0", registry, serve_config());
    match result {
        Err(geotorch_serve::ServeError::ModelLoad(msg)) => {
            assert!(msg.contains("satcnn"), "error should name the model: {msg}");
        }
        Err(other) => panic!("expected ModelLoad, got {other}"),
        Ok(_) => panic!("server must not start with a mismatched checkpoint"),
    }
    std::fs::remove_file(&ckpt).ok();
}
