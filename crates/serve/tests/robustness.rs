//! Robustness behaviour of the serving stack: deadlines, admission
//! control with backpressure watermarks, graceful drain with a hard
//! timeout, and worker-death visibility — much of it driven through the
//! deterministic fault-injection harness in `geotorch-telemetry::fault`.
//!
//! The fault registry and the telemetry counters are process-global, so
//! every test here takes the `serial()` gate: a plan installed by one
//! test must never fire inside another's forward pass.

use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use geotorch_nn::{Module, Var};
use geotorch_serve::{
    BatchConfig, ModelWorker, Registry, ServeConfig, ServeError, ServeModel, Server,
};
use geotorch_tensor::{Device, Tensor};
use geotorch_telemetry::fault::{self, FaultAction, FaultPlan};
use serde::Value;

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// The seed every chaos scenario runs under; CI sweeps it via the
/// `GEOTORCH_CHAOS_SEED` matrix.
fn chaos_seed() -> u64 {
    std::env::var("GEOTORCH_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn cpu_config(max_batch: usize, max_wait_ms: u64, queue_bound: usize) -> BatchConfig {
    BatchConfig {
        max_batch,
        max_wait_ms,
        device: Device::Cpu,
        queue_bound,
        replicas: 1,
    }
}

fn sample(v: f32) -> Tensor {
    Tensor::from_vec(vec![v], &[1])
}

/// Doubles its input; no parameters, no surprises.
struct Echo;

impl Module for Echo {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for Echo {
    fn predict(&self, batch: &Var) -> Var {
        batch.mul_scalar(2.0)
    }
}

/// Sleeps `ms` per forward and logs the first element of every batch it
/// actually ran — the log is how tests prove an expired request never
/// reached the model.
struct Slow {
    ms: u64,
    log: Arc<Mutex<Vec<f32>>>,
}

impl Module for Slow {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for Slow {
    fn predict(&self, batch: &Var) -> Var {
        std::thread::sleep(Duration::from_millis(self.ms));
        self.log.lock().unwrap().push(batch.value().as_slice()[0]);
        batch.mul_scalar(2.0)
    }
}

fn slow_worker(ms: u64, config: BatchConfig) -> (ModelWorker, Arc<Mutex<Vec<f32>>>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let log_clone = Arc::clone(&log);
    let worker = ModelWorker::spawn("slow", config, move || {
        Ok(Box::new(Slow {
            ms,
            log: Arc::clone(&log_clone),
        }) as Box<dyn ServeModel>)
    })
    .expect("worker starts");
    (worker, log)
}

#[test]
fn zero_budget_is_rejected_at_admission() {
    let _g = serial();
    let (worker, log) = slow_worker(5, cpu_config(1, 1, 16));
    let err = worker
        .client()
        .predict_with_deadline(sample(1.0), Some(Duration::ZERO))
        .expect_err("an already-expired request must not be served");
    assert!(matches!(err, ServeError::DeadlineExceeded(_)), "{err}");
    worker.shutdown();
    assert!(
        log.lock().unwrap().is_empty(),
        "an expired request must never reach the model"
    );
}

#[test]
fn request_that_expires_in_the_queue_never_takes_a_batch_slot() {
    let _g = serial();
    // One 80 ms forward at a time: request B queues behind A's forward
    // and its 30 ms budget expires long before the worker pops it.
    let (worker, log) = slow_worker(80, cpu_config(1, 1, 16));
    let client = worker.client();
    let a = std::thread::spawn({
        let client = client.clone();
        move || client.predict(sample(1.0))
    });
    std::thread::sleep(Duration::from_millis(30));
    let started = Instant::now();
    let err = client
        .predict_with_deadline(sample(2.0), Some(Duration::from_millis(30)))
        .expect_err("B's deadline expires while A's forward is running");
    assert!(matches!(err, ServeError::DeadlineExceeded(_)), "{err}");
    assert!(
        started.elapsed() < Duration::from_millis(70),
        "the caller must give up at its own deadline, not wait for the worker"
    );
    assert_eq!(a.join().unwrap().unwrap().as_slice(), &[2.0]);
    worker.shutdown();
    assert_eq!(
        log.lock().unwrap().as_slice(),
        &[1.0],
        "the expired request must be rejected at queue pop, not forwarded"
    );
}

#[test]
fn admission_past_the_bound_sheds_with_overloaded() {
    let _g = serial();
    const K: usize = 8;
    let (worker, _log) = slow_worker(100, cpu_config(1, 1, 1));
    let barrier = Arc::new(Barrier::new(K));
    let outcomes: Vec<Result<Tensor, ServeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|i| {
                let client = worker.client();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    client.predict(sample(i as f32))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = outcomes.iter().filter(|r| r.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Overloaded(_))))
        .count();
    assert_eq!(ok + shed, K, "every request is served or shed: {outcomes:?}");
    assert!(ok >= 1, "the admitted request must be served");
    assert!(shed >= 1, "a bound of 1 under {K} simultaneous requests must shed");
    worker.shutdown();
}

#[test]
fn backpressure_sets_past_high_watermark_and_clears_with_hysteresis() {
    let _g = serial();
    const K: usize = 8;
    // bound 8 → high watermark 6, low watermark 2.
    let (worker, _log) = slow_worker(30, cpu_config(1, 1, K));
    let client = worker.client();
    assert_eq!(client.queue_bound(), K);
    assert!(!client.is_pressured());

    let barrier = Arc::new(Barrier::new(K + 1));
    std::thread::scope(|scope| {
        for i in 0..K {
            let client = client.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                client.predict(sample(i as f32)).expect("admitted within bound")
            });
        }
        barrier.wait();
        // Depth jumps to 8 ≥ high watermark and stays pressured until it
        // falls below the low watermark (~6 forwards later), a window of
        // well over 100 ms — the poll below must observe it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !client.is_pressured() {
            assert!(Instant::now() < deadline, "never saw the pressured state");
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    // The admission guard drops on the worker thread and may trail the
    // reply by a moment; poll rather than assert instantly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.is_pressured() || client.queue_depth() != 0 {
        assert!(
            Instant::now() < deadline,
            "pressure must clear and the queue must empty once drained \
             (pressured={}, depth={})",
            client.is_pressured(),
            client.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    worker.shutdown();
}

#[test]
fn injected_forward_panic_kills_the_worker_and_is_visible() {
    let _g = serial();
    fault::install(FaultPlan::new(chaos_seed()).on_nth(
        "serve.batcher.forward",
        1,
        FaultAction::Panic("poisoned forward".into()),
    ));
    let worker = ModelWorker::spawn("echo", cpu_config(4, 1, 16), || {
        Ok(Box::new(Echo) as Box<dyn ServeModel>)
    })
    .expect("worker starts");
    let client = worker.client();
    let err = client
        .predict(sample(1.0))
        .expect_err("the injected panic kills the request");
    assert!(
        matches!(err, ServeError::Internal(_) | ServeError::Unavailable(_)),
        "unexpected error: {err}"
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while !client.has_died() {
        assert!(Instant::now() < deadline, "worker death never became visible");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(!client.is_alive());
    let log = fault::clear();
    assert_eq!(log.len(), 1, "exactly one injection: {log:?}");
    assert_eq!(log[0].point, "serve.batcher.forward");

    // Requests after the death fail fast with Unavailable (503), they
    // don't hang on a dead queue.
    let err = client.predict(sample(2.0)).expect_err("worker is gone");
    assert!(matches!(err, ServeError::Unavailable(_)), "{err}");
    worker.shutdown();
}

#[test]
fn healthz_reports_a_dead_worker_as_degraded() {
    let _g = serial();
    let mut registry = Registry::new();
    registry.register("echo", None, || Box::new(Echo) as Box<dyn ServeModel>);
    let config = ServeConfig {
        batch: cpu_config(4, 1, 16),
        http_workers: 2,
        enable_telemetry: true,
        default_deadline_ms: 2_000,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry, config).expect("server starts");
    let addr = server.addr();

    let (status, body) = http(addr, "GET", "/healthz", "", &[]);
    assert_eq!(status, 200, "{body}");
    assert_eq!(health_field(&body, "status"), "ok");
    assert_eq!(model_status(&body, "echo"), "ok");

    fault::install(FaultPlan::new(chaos_seed()).on_nth(
        "serve.batcher.forward",
        1,
        FaultAction::Panic("chaos".into()),
    ));
    let payload = serde_json::to_string(&sample(3.0)).unwrap();
    let (status, _) = http(addr, "POST", "/predict/echo", &payload, &[]);
    assert!(
        status == 500 || status == 503 || status == 504,
        "the poisoned forward must fail the request, got {status}"
    );
    fault::clear();

    // The regression this guards: a dead model thread must flip
    // aggregate health to degraded and name the dead model.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = http(addr, "GET", "/healthz", "", &[]);
        assert_eq!(status, 200, "degraded still serves healthz: {body}");
        if health_field(&body, "status") == "degraded" && model_status(&body, "echo") == "dead" {
            break;
        }
        assert!(Instant::now() < deadline, "healthz never reported the death: {body}");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Predictions for the dead model are refused with 503, not hung.
    let (status, body) = http(addr, "POST", "/predict/echo", &payload, &[]);
    assert_eq!(status, 503, "{body}");
    server.shutdown();
}

#[test]
fn begin_drain_flips_healthz_and_refuses_predictions() {
    let _g = serial();
    let mut registry = Registry::new();
    registry.register("echo", None, || Box::new(Echo) as Box<dyn ServeModel>);
    let config = ServeConfig {
        batch: cpu_config(4, 1, 16),
        http_workers: 2,
        enable_telemetry: true,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry, config).expect("server starts");
    let addr = server.addr();
    let (status, _) = http(addr, "GET", "/healthz", "", &[]);
    assert_eq!(status, 200);

    server.begin_drain();
    // 503 tells load balancers to stop routing here; the body says why.
    let (status, body) = http(addr, "GET", "/healthz", "", &[]);
    assert_eq!(status, 503, "{body}");
    assert_eq!(health_field(&body, "status"), "draining");
    let payload = serde_json::to_string(&sample(1.0)).unwrap();
    let (status, body) = http(addr, "POST", "/predict/echo", &payload, &[]);
    assert_eq!(status, 503, "{body}");
    server.shutdown();
}

#[test]
fn deadline_header_is_honoured_and_validated_over_http() {
    let _g = serial();
    let mut registry = Registry::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let log_clone = Arc::clone(&log);
    registry.register("slow", None, move || {
        Box::new(Slow {
            ms: 300,
            log: Arc::clone(&log_clone),
        }) as Box<dyn ServeModel>
    });
    let config = ServeConfig {
        batch: cpu_config(1, 1, 16),
        http_workers: 2,
        enable_telemetry: true,
        default_deadline_ms: 10_000,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry, config).expect("server starts");
    let addr = server.addr();
    let payload = serde_json::to_string(&sample(1.0)).unwrap();

    // A 40 ms budget against a 300 ms model: 504, and in ~40 ms, not 300.
    let started = Instant::now();
    let (status, body) = http(addr, "POST", "/predict/slow", &payload, &[("X-Deadline-Ms", "40")]);
    assert_eq!(status, 504, "{body}");
    assert!(
        started.elapsed() < Duration::from_millis(280),
        "the 504 must come at the deadline, not after the forward"
    );

    // An unparseable deadline is the client's mistake: 400.
    let (status, body) =
        http(addr, "POST", "/predict/slow", &payload, &[("X-Deadline-Ms", "soon")]);
    assert_eq!(status, 400, "{body}");

    // A generous budget succeeds.
    let (status, body) =
        http(addr, "POST", "/predict/slow", &payload, &[("X-Deadline-Ms", "5000")]);
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

#[test]
fn worker_drain_answers_every_admitted_request() {
    let _g = serial();
    const K: usize = 12;
    let (worker, log) = slow_worker(20, cpu_config(2, 1, 64));
    let barrier = Arc::new(Barrier::new(K + 1));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|i| {
                let client = worker.client();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    client.predict(sample(i as f32))
                })
            })
            .collect();
        barrier.wait();
        // All K are admitted (bound 64) before the sentinel goes in;
        // FIFO guarantees every one of them is still served.
        std::thread::sleep(Duration::from_millis(40));
        let started = Instant::now();
        assert!(
            worker.shutdown_within(Duration::from_secs(10)),
            "a healthy worker must drain well within the hard timeout"
        );
        assert!(started.elapsed() < Duration::from_secs(5));
        for (i, handle) in handles.into_iter().enumerate() {
            let out = handle
                .join()
                .unwrap()
                .unwrap_or_else(|e| panic!("request {i} dropped during drain: {e}"));
            assert_eq!(out.as_slice(), &[2.0 * i as f32]);
        }
    });
    let forwards = log.lock().unwrap().len();
    assert!(
        (1..=K).contains(&forwards),
        "all {K} requests served across {forwards} batched forwards"
    );
}

#[test]
fn drain_hard_timeout_detaches_a_wedged_worker() {
    let _g = serial();
    fault::install(
        FaultPlan::new(chaos_seed()).always("serve.batcher.model", FaultAction::DelayMs(1_500)),
    );
    let worker = ModelWorker::spawn("echo", cpu_config(1, 1, 16), || {
        Ok(Box::new(Echo) as Box<dyn ServeModel>)
    })
    .expect("worker starts");
    let client = worker.client();
    let wedged = std::thread::spawn(move || {
        client.predict_with_deadline(sample(1.0), Some(Duration::from_millis(200)))
    });
    std::thread::sleep(Duration::from_millis(50));
    let started = Instant::now();
    let drained = worker.shutdown_within(Duration::from_millis(100));
    let elapsed = started.elapsed();
    assert!(!drained, "a 1.5 s stall cannot drain inside a 100 ms budget");
    assert!(
        elapsed < Duration::from_secs(1),
        "the hard timeout must bound the drain, waited {elapsed:?}"
    );
    // The caller is bounded by its own deadline, not by the stall.
    let err = wedged.join().unwrap().expect_err("deadline fires first");
    assert!(matches!(err, ServeError::DeadlineExceeded(_)), "{err}");
    fault::clear();
    // Give the detached worker time to finish its injected sleep before
    // the next gated test installs a different plan.
    std::thread::sleep(Duration::from_millis(1_600));
}

#[test]
fn injected_faults_are_deterministic_per_seed_through_the_serve_path() {
    let _g = serial();
    let run = |seed: u64| -> (Vec<bool>, Vec<geotorch_telemetry::fault::FaultRecord>) {
        fault::install(FaultPlan::new(seed).with_probability(
            "serve.batcher.model",
            0.5,
            FaultAction::Error("chaos".into()),
        ));
        let worker = ModelWorker::spawn("echo", cpu_config(1, 1, 16), || {
            Ok(Box::new(Echo) as Box<dyn ServeModel>)
        })
        .expect("worker starts");
        let client = worker.client();
        // max_batch 1 and sequential submission: request i is exactly
        // hit i of the fault point.
        let failures: Vec<bool> = (0..24)
            .map(|i| client.predict(sample(i as f32)).is_err())
            .collect();
        worker.shutdown();
        (failures, fault::clear())
    };
    let seed = chaos_seed();
    let (fail_a, log_a) = run(seed);
    let (fail_b, log_b) = run(seed);
    assert_eq!(fail_a, fail_b, "same seed must fail the same requests");
    assert_eq!(log_a, log_b, "same seed must record the same injections");
    assert!(
        fail_a.iter().any(|&f| f) && fail_a.iter().any(|&f| !f),
        "p=0.5 over 24 requests should fail some and pass some: {fail_a:?}"
    );
    let (fail_c, _) = run(seed.wrapping_add(1));
    assert_ne!(fail_a, fail_c, "a different seed should fail different requests");
}

// ---- tiny HTTP client --------------------------------------------------

fn http(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut headers = String::new();
    for (key, value) in extra_headers {
        headers.push_str(&format!("{key}: {value}\r\n"));
    }
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n{headers}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, payload) = response.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, payload.to_string())
}

fn health_field(body: &str, field: &str) -> String {
    let health: Value = serde_json::from_str(body).expect("healthz is JSON");
    health
        .get(field)
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

fn model_status(body: &str, model: &str) -> String {
    let health: Value = serde_json::from_str(body).expect("healthz is JSON");
    health
        .get("model_status")
        .and_then(|m| m.get(model))
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}
