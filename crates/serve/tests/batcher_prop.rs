//! Property tests for the micro-batching scheduler's core invariants,
//! over random arrival patterns, batch sizes, and ragged shapes:
//!
//! 1. every submitted request gets exactly one response;
//! 2. each response equals the sequential no-grad forward of its own
//!    sample (the doubler makes that an exact, closed-form check);
//! 3. blocking per-connection submission preserves per-connection order;
//! 4. no forward ever exceeds `max_batch` rows, and the rows add up to
//!    the number of requests.

use std::sync::{Arc, Barrier, Mutex};

use geotorch_nn::{Module, Var};
use geotorch_serve::{BatchConfig, ModelWorker, ServeModel};
use geotorch_tensor::{Device, Tensor};
use proptest::prelude::*;

/// Doubles every element and logs each forward's batch size.
struct Doubler {
    batches: Arc<Mutex<Vec<usize>>>,
}

impl Module for Doubler {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for Doubler {
    fn predict(&self, batch: &Var) -> Var {
        self.batches.lock().unwrap().push(batch.shape()[0]);
        batch.mul_scalar(2.0)
    }
}

const SHAPES: [&[usize]; 4] = [&[3], &[2, 2], &[5], &[1, 2, 2]];

/// A request: which ragged shape it uses and a value to fill it with
/// (derived from client and sequence number, so every request is
/// distinguishable in its response).
fn sample_for(client: usize, seq: usize, shape_idx: u8) -> Tensor {
    let shape = SHAPES[shape_idx as usize % SHAPES.len()];
    let value = (client * 100 + seq) as f32 + 1.0;
    let len: usize = shape.iter().product();
    Tensor::from_vec(vec![value; len], shape)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_request_gets_exactly_one_correct_response_in_order(
        max_batch in 1usize..6,
        max_wait_ms in 0u64..4,
        clients in 1usize..5,
        per_client in 1usize..5,
        replicas in 1usize..=4,
        shape_sel in prop::collection::vec(0u8..4, 16..=16),
        jitter in prop::collection::vec(0u64..3, 16..=16),
    ) {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let batches_clone = Arc::clone(&batches);
        // Every replica builds its own Doubler, but they all log into
        // the same batch journal — so the partition invariant (4) is
        // checked across the whole replica set.
        let worker = ModelWorker::spawn(
            "doubler",
            BatchConfig {
                max_batch,
                max_wait_ms,
                device: Device::Cpu,
                queue_bound: 256,
                replicas,
            },
            move || Ok(Box::new(Doubler { batches: Arc::clone(&batches_clone) }) as Box<dyn ServeModel>),
        )
        .expect("worker starts");
        prop_assert_eq!(worker.replicas(), replicas);

        let barrier = Arc::new(Barrier::new(clients));
        let per_client_results: Vec<Vec<(Tensor, Tensor)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let client = worker.client();
                    let barrier = Arc::clone(&barrier);
                    let shape_sel = shape_sel.clone();
                    let jitter = jitter.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        // Blocking submission: response i must come back
                        // before request i+1 goes out — per-connection
                        // order is part of the client contract.
                        (0..per_client)
                            .map(|seq| {
                                let idx = (c * per_client + seq) % 16;
                                std::thread::sleep(
                                    std::time::Duration::from_millis(jitter[idx]),
                                );
                                let sample = sample_for(c, seq, shape_sel[idx]);
                                let out = client
                                    .predict(sample.clone())
                                    .expect("prediction succeeds");
                                (sample, out)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        worker.shutdown();

        // (1) exactly one response per request.
        let total: usize = per_client_results.iter().map(Vec::len).sum();
        prop_assert_eq!(total, clients * per_client);

        // (2) + (3): responses equal the sequential no-grad forward of
        // their own sample, in submission order per connection.
        for (c, results) in per_client_results.iter().enumerate() {
            for (seq, (sample, out)) in results.iter().enumerate() {
                let expected_value = 2.0 * ((c * 100 + seq) as f32 + 1.0);
                prop_assert_eq!(out.shape(), sample.shape());
                for &got in out.as_slice() {
                    prop_assert_eq!(got, expected_value, "client {} seq {}", c, seq);
                }
            }
        }

        // (4) forwards partition the requests without oversized batches.
        let batches = batches.lock().unwrap();
        prop_assert_eq!(batches.iter().sum::<usize>(), clients * per_client);
        prop_assert!(batches.iter().all(|&b| b >= 1 && b <= max_batch),
            "batch sizes {:?} exceed max_batch {}", &*batches, max_batch);
    }
}
