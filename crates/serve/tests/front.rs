//! The event-driven front's concurrency contract, end to end over real
//! sockets:
//!
//! * **slow-loris**: clients that stall mid-headers park in the event
//!   loop and must not delay anyone else's `/predict` or `/healthz`;
//! * **keep-alive**: an HTTP/1.1 connection serves sequential requests
//!   without reconnecting, honors `Connection: close`, and is closed
//!   silently when it idles between requests;
//! * **pipelining**: several requests written back-to-back on one
//!   connection are all answered, in order;
//! * **accept backoff**: an injected `accept` failure counts
//!   `serve.error.accept` and the listener recovers (the connection in
//!   the backlog is still served) instead of busy-spinning.
//!
//! Counters are process-global and monotonic, so assertions are
//! before/after deltas; the fault-injection test serialises through a
//! gate because the fault registry is process-global too.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use geotorch_nn::{Module, Var};
use geotorch_serve::{BatchConfig, Registry, ServeConfig, ServeModel, Server};
use geotorch_tensor::{Device, Tensor};
use geotorch_telemetry::fault::{self, FaultAction, FaultPlan};
use serde::Value;

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Doubles its input.
struct Echo;

impl Module for Echo {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for Echo {
    fn predict(&self, batch: &Var) -> Var {
        batch.mul_scalar(2.0)
    }
}

fn start_server(http_workers: usize, socket_timeout_ms: u64) -> Server {
    let mut registry = Registry::new();
    registry.register("echo", None, || Box::new(Echo) as Box<dyn ServeModel>);
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 1,
            device: Device::Cpu,
            queue_bound: 64,
            replicas: 1,
        },
        http_workers,
        enable_telemetry: true,
        default_deadline_ms: 10_000,
        socket_timeout_ms,
        max_body: 1 << 20,
        drain_timeout_ms: 10_000,
    };
    Server::start("127.0.0.1:0", registry, config).expect("server starts")
}

fn predict_payload(v: f32) -> String {
    serde_json::to_string(&Tensor::from_vec(vec![v], &[1])).expect("serialize")
}

fn request_bytes(method: &str, path: &str, body: &str, close: bool) -> String {
    let connection = if close { "Connection: close\r\n" } else { "" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n{connection}\r\n{body}",
        body.len()
    )
}

/// One blocking one-shot request (`Connection: close`).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(request_bytes(method, path, body, true).as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, payload) = response.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, payload.to_string())
}

/// Read exactly one response off a keep-alive stream: headers, then a
/// `Content-Length`-sized body. Returns (status, header block, body).
fn read_one_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response headers");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.split_once(':').filter(|(k, _)| k.eq_ignore_ascii_case("content-length")))
        .map(|(_, v)| v.trim().parse().expect("content-length"))
        .expect("response carries Content-Length");
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    (status, head, String::from_utf8(body).expect("utf-8 body"))
}

/// The value of counter `name` in the `/metrics` snapshot.
fn counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "metrics endpoint must serve: {body}");
    let metrics: Value = serde_json::from_str(&body).expect("metrics is JSON");
    metrics
        .get("stats")
        .and_then(Value::as_array)
        .expect("stats array")
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
        .and_then(|s| s.get("count"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0) as u64
}

fn doubled(body: &str) -> f64 {
    let parsed: Value = serde_json::from_str(body).expect("prediction is JSON");
    parsed
        .get("data")
        .and_then(Value::as_array)
        .and_then(|a| a.first())
        .and_then(Value::as_f64)
        .expect("prediction data")
}

/// The head-of-line-blocking regression test: with only two responder
/// threads, a whole swarm of clients stalled mid-headers must not delay
/// concurrent predictions or health checks beyond a small bound. On the
/// seed front (one inline `handle_connection` per accept thread) each
/// stalled client wedged a thread for the whole socket timeout.
#[test]
fn stalled_clients_do_not_delay_concurrent_requests() {
    let _g = serial();
    let server = start_server(2, 5_000);
    let addr = server.addr();
    let (status, _) = http(addr, "POST", "/predict/echo", &predict_payload(1.0));
    assert_eq!(status, 200, "warm-up");

    // 16 slow-loris clients: partial request line, then silence. Held
    // open for the whole test.
    let swarm: Vec<TcpStream> = (0..16)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).expect("stalled connect");
            stream.write_all(b"POST /pre").expect("partial header");
            stream
        })
        .collect();

    // Live traffic must be unaffected, well inside the 5 s socket
    // timeout the stalled swarm is burning.
    for i in 0..10 {
        let started = Instant::now();
        let (status, body) = if i % 3 == 0 {
            http(addr, "GET", "/healthz", "")
        } else {
            http(addr, "POST", "/predict/echo", &predict_payload(i as f32))
        };
        let elapsed = started.elapsed();
        assert_eq!(status, 200, "live request {i} failed: {body}");
        if i % 3 != 0 {
            assert_eq!(doubled(&body), 2.0 * i as f64, "echo result");
        }
        assert!(
            elapsed < Duration::from_secs(2),
            "request {i} took {elapsed:?} behind {} stalled clients",
            swarm.len()
        );
    }
    drop(swarm);
    server.shutdown();
}

#[test]
fn keep_alive_connection_serves_sequential_requests() {
    let _g = serial();
    let server = start_server(2, 400);
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Three requests, one at a time, no Connection: close — the same
    // socket must answer all three and stay open.
    for i in 0..3 {
        stream
            .write_all(
                request_bytes("POST", "/predict/echo", &predict_payload(i as f32), false)
                    .as_bytes(),
            )
            .expect("send");
        let (status, head, body) = read_one_response(&mut stream);
        assert_eq!(status, 200, "keep-alive request {i}: {body}");
        assert_eq!(doubled(&body), 2.0 * i as f64, "request {i} result");
        assert!(
            head.to_ascii_lowercase().contains("connection: keep-alive"),
            "response must advertise keep-alive: {head}"
        );
    }

    // An idle keep-alive connection is closed silently (no 408) once
    // the idle timer fires.
    let mut rest = String::new();
    stream
        .read_to_string(&mut rest)
        .expect("server closes the idle connection cleanly");
    assert!(
        rest.is_empty(),
        "idle keep-alive close must not write anything, got: {rest}"
    );

    // Connection: close is still honored.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(request_bytes("POST", "/predict/echo", &predict_payload(9.0), true).as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    assert!(
        response.to_ascii_lowercase().contains("connection: close"),
        "explicit close must be honored: {response}"
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_are_all_answered_in_order() {
    let _g = serial();
    let server = start_server(2, 5_000);
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");

    // Five requests in a single write; the last one opts out of
    // keep-alive so the connection ends deterministically.
    let mut batch = String::new();
    for i in 0..5 {
        batch.push_str(&request_bytes(
            "POST",
            "/predict/echo",
            &predict_payload(10.0 + i as f32),
            i == 4,
        ));
    }
    stream.write_all(batch.as_bytes()).expect("send pipeline");

    for i in 0..5 {
        let (status, _, body) = read_one_response(&mut stream);
        assert_eq!(status, 200, "pipelined request {i}: {body}");
        assert_eq!(
            doubled(&body),
            2.0 * (10.0 + i as f64),
            "pipelined responses must come back in request order"
        );
    }
    let mut rest = String::new();
    stream.read_to_string(&mut rest).expect("close after final response");
    assert!(rest.is_empty(), "nothing after the final response: {rest}");
    server.shutdown();
}

/// An injected accept failure must count `serve.error.accept`, back off
/// instead of hot-looping, and still serve the connection that was
/// waiting in the backlog when the listener recovers.
#[test]
fn accept_fault_backs_off_and_recovers() {
    let _g = serial();
    let server = start_server(2, 5_000);
    let addr = server.addr();
    let before = counter(addr, "serve.error.accept");

    fault::install(FaultPlan::new(1).on_nth(
        "serve.http.accept",
        1,
        FaultAction::Error("simulated EMFILE".into()),
    ));
    let started = Instant::now();
    let (status, body) = http(addr, "POST", "/predict/echo", &predict_payload(3.0));
    let elapsed = started.elapsed();
    let log = fault::clear();

    assert_eq!(status, 200, "request behind the accept fault: {body}");
    assert_eq!(doubled(&body), 6.0);
    assert!(
        elapsed < Duration::from_secs(2),
        "backoff recovery took {elapsed:?}"
    );
    assert_eq!(log.len(), 1, "exactly one injection: {log:?}");
    assert_eq!(log[0].point, "serve.http.accept");
    assert!(
        counter(addr, "serve.error.accept") > before,
        "accept failures must be counted"
    );
    server.shutdown();
}
