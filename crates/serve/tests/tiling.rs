//! Tiled-inference acceptance: seam consistency against the unsplit
//! forward pass (the property that makes scene-scale inference *correct*,
//! not just fast), backpressure/deadline interaction with the batcher,
//! and clean whole-mosaic failure under injected tile faults.
//!
//! The fault registry and telemetry counters are process-global, so every
//! test takes the `serial()` gate.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use geotorch_datasets::synth::RasterScene;
use geotorch_models::raster::UNet;
use geotorch_models::Segmenter;
use geotorch_nn::{no_grad, Module, Var};
use geotorch_raster::{BlendMode, Raster, Window};
use geotorch_serve::tiling::{run_mosaic, TileConfig};
use geotorch_serve::{BatchConfig, ModelWorker, SegmenterServe, ServeError, ServeModel};
use geotorch_tensor::{with_device, Device, Tensor};
use geotorch_telemetry::fault::{self, FaultAction, FaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn chaos_seed() -> u64 {
    std::env::var("GEOTORCH_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Monotone bit-distance between two floats: 0 = identical, 1 = adjacent
/// representable values. Infinite for NaN or opposite-sign pairs other
/// than ±0.
fn ulp_distance(a: f32, b: f32) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let key = |x: f32| -> i64 {
        let bits = x.to_bits() as i32;
        (if bits < 0 { i32::MIN - bits } else { bits }) as i64
    };
    key(a).abs_diff(key(b))
}

fn max_ulp(a: &[f32], b: &[f32]) -> u64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| ulp_distance(x, y)).max().unwrap_or(0)
}

const UNET_SEED: u64 = 7;

/// The reference scene for seam tests: 3 bands, 96×96, cloud structure.
fn seam_scene() -> Raster {
    let (scene, _mask) = RasterScene::new(3, 96, 96, 11).segmentation_image(1);
    scene
}

fn unet_worker(name: &str, device: Device, replicas: usize) -> ModelWorker {
    let config = BatchConfig {
        max_batch: 4,
        max_wait_ms: 1,
        device,
        queue_bound: 32,
        replicas,
    };
    ModelWorker::spawn(name, config, move || {
        let mut rng = StdRng::seed_from_u64(UNET_SEED);
        Ok(Box::new(SegmenterServe(UNet::new(3, 1, 2, &mut rng))) as Box<dyn ServeModel>)
    })
    .expect("unet worker starts")
}

/// The unsplit reference: one forward over the whole scene on `device`.
fn whole_scene_forward(scene: &Raster, device: Device) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(UNET_SEED);
    let unet = UNet::new(3, 1, 2, &mut rng);
    unet.set_training(false);
    let input = Tensor::from_slice(
        scene.as_slice(),
        &[1, scene.bands(), scene.height(), scene.width()],
    );
    let out = with_device(device, || no_grad(|| unet.forward(&Var::constant(input)).value()));
    assert_eq!(out.shape(), &[1, 1, scene.height(), scene.width()]);
    out.as_slice().to_vec()
}

/// The geometry that makes tiled UNet inference exact: the 2-level UNet's
/// receptive field radius is 22, so halo 24 (≥ 22, and even) distrusts
/// every pixel a tile computes differently from the whole scene; stride
/// 16 = tile − 2·halo keeps the trusted cores gap-free; alignment 4
/// keeps every tile on the two-pooling downsample grid.
fn exact_cfg() -> TileConfig {
    TileConfig {
        tile: 64,
        stride: 16,
        halo: 24,
        alignment: 4,
        classes: 1,
        max_in_flight: 4,
        tile_deadline: Some(Duration::from_secs(60)),
        blend: BlendMode::Uniform,
    }
}

#[test]
fn mosaic_matches_whole_scene_forward_on_both_devices() {
    let _g = serial();
    let scene = seam_scene();
    for device in [Device::Cpu, Device::parallel()] {
        let reference = whole_scene_forward(&scene, device);
        let worker = unet_worker("unet-seam", device, 2);
        let (mosaic, stats) =
            run_mosaic(&worker.client(), &scene, scene.extent(), exact_cfg())
                .expect("mosaic run succeeds");
        assert_eq!((mosaic.bands(), mosaic.height(), mosaic.width()), (1, 96, 96));
        assert_eq!(stats.tiles, 9, "3×3 clamped grid over 96 at tile 64 stride 16");
        assert_eq!(stats.tile_latencies.len(), 9);
        let worst = max_ulp(mosaic.as_slice(), &reference);
        assert!(
            worst <= 4,
            "tiled mosaic deviates {worst} ulp from the whole-scene forward on {device:?} — \
             seams are numerically visible"
        );
        worker.shutdown();
    }
}

#[test]
fn mosaic_is_deterministic_across_runs() {
    let _g = serial();
    let scene = seam_scene();
    let worker = unet_worker("unet-det", Device::Cpu, 2);
    let client = worker.client();
    let (a, _) = run_mosaic(&client, &scene, scene.extent(), exact_cfg()).unwrap();
    let (b, _) = run_mosaic(&client, &scene, scene.extent(), exact_cfg()).unwrap();
    assert_eq!(
        a.as_slice(),
        b.as_slice(),
        "in-order stitching must make the mosaic bit-stable run to run"
    );
    worker.shutdown();
}

/// Identity "segmenter": returns its single input band as the class
/// plane. Receptive field 0, so halo 0 / stride == tile non-overlapping
/// tiling must reproduce the scene bit-for-bit.
struct Identity;

impl Module for Identity {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for Identity {
    fn predict(&self, batch: &Var) -> Var {
        batch.mul_scalar(1.0)
    }
}

fn identity_worker(name: &str, queue_bound: usize) -> ModelWorker {
    let config = BatchConfig {
        max_batch: 4,
        max_wait_ms: 1,
        device: Device::Cpu,
        queue_bound,
        replicas: 1,
    };
    ModelWorker::spawn(name, config, || Ok(Box::new(Identity) as Box<dyn ServeModel>))
        .expect("identity worker starts")
}

fn identity_cfg() -> TileConfig {
    TileConfig {
        tile: 8,
        stride: 8,
        halo: 0,
        alignment: 1,
        classes: 1,
        max_in_flight: 4,
        tile_deadline: Some(Duration::from_secs(30)),
        blend: BlendMode::Uniform,
    }
}

fn small_scene() -> Raster {
    let data: Vec<f32> = (0..24 * 24).map(|v| v as f32 * 0.5 - 100.0).collect();
    Raster::new(data, 1, 24, 24).unwrap()
}

#[test]
fn non_overlapping_identity_mosaic_is_bit_exact_and_roi_georeferenced() {
    let _g = serial();
    let mut scene = small_scene();
    scene.transform.origin_x = 500.0;
    scene.transform.pixel_width = 10.0;
    scene.epsg = 32633;
    let worker = identity_worker("identity", 16);
    // Full scene: exact reproduction.
    let (mosaic, stats) =
        run_mosaic(&worker.client(), &scene, scene.extent(), identity_cfg()).unwrap();
    assert_eq!(mosaic.as_slice(), scene.as_slice());
    assert_eq!(stats.tiles, 9);
    // Interior roi: mosaic matches the crop and inherits its georef.
    let roi = Window::new(8, 16, 16, 8);
    let (crop_mosaic, _) = run_mosaic(&worker.client(), &scene, roi, identity_cfg()).unwrap();
    let crop = scene.read_window(&roi).unwrap();
    assert_eq!(crop_mosaic.as_slice(), crop.as_slice());
    assert_eq!(crop_mosaic.transform, crop.transform);
    assert_eq!(crop_mosaic.epsg, 32633);
    worker.shutdown();
}

#[test]
fn cosine_blend_preserves_identity_within_tolerance() {
    let _g = serial();
    let scene = small_scene();
    let worker = identity_worker("identity-cos", 16);
    let cfg = TileConfig {
        tile: 8,
        stride: 4,
        halo: 1,
        blend: BlendMode::Cosine,
        ..identity_cfg()
    };
    let (mosaic, _) = run_mosaic(&worker.client(), &scene, scene.extent(), cfg).unwrap();
    for (m, s) in mosaic.as_slice().iter().zip(scene.as_slice()) {
        assert!(
            (m - s).abs() <= s.abs() * 1e-5 + 1e-4,
            "cosine-blended identity mosaic drifted: {m} vs {s}"
        );
    }
    worker.shutdown();
}

/// Sleeps per forward, then returns a zero plane per sample — the tool
/// for deadline and backpressure scenarios.
struct SlowZeros {
    ms: u64,
}

impl Module for SlowZeros {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for SlowZeros {
    fn predict(&self, batch: &Var) -> Var {
        std::thread::sleep(Duration::from_millis(self.ms));
        let shape = batch.shape();
        Var::constant(Tensor::zeros(&[shape[0], 1, shape[2], shape[3]]))
    }
}

fn slow_worker(name: &str, ms: u64, queue_bound: usize) -> ModelWorker {
    let config = BatchConfig {
        max_batch: 1,
        max_wait_ms: 1,
        device: Device::Cpu,
        queue_bound,
        replicas: 1,
    };
    ModelWorker::spawn(name, config, move || {
        Ok(Box::new(SlowZeros { ms }) as Box<dyn ServeModel>)
    })
    .expect("slow worker starts")
}

/// The queue must drain to zero after a run — RAII admission guards
/// release every slot even on the failure path.
fn assert_no_leaked_slots(worker: &ModelWorker) {
    let client = worker.client();
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.queue_depth() != 0 {
        assert!(
            Instant::now() < deadline,
            "queue depth stuck at {} — an admission slot leaked",
            client.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn more_tiles_in_flight_than_queue_bound_sheds_and_fails_cleanly() {
    let _g = serial();
    let scene = small_scene();
    // Bound 2 but 8 submitters: admission control must shed, and the
    // driver must surface that as a whole-mosaic Overloaded failure.
    let worker = slow_worker("slow-shed", 20, 2);
    let cfg = TileConfig {
        max_in_flight: 8,
        ..identity_cfg()
    };
    let err = run_mosaic(&worker.client(), &scene, scene.extent(), cfg)
        .expect_err("8 concurrent tiles against a bound of 2 must shed");
    assert!(matches!(err, ServeError::Overloaded(_)), "{err}");
    assert_no_leaked_slots(&worker);
    // The same worker still serves a correctly-bounded run afterwards.
    let cfg = TileConfig {
        max_in_flight: 2,
        ..identity_cfg()
    };
    let (mosaic, _) = run_mosaic(&worker.client(), &scene, scene.extent(), cfg)
        .expect("in-flight ≤ queue bound never sheds");
    assert!(mosaic.as_slice().iter().all(|&v| v == 0.0));
    assert_no_leaked_slots(&worker);
    worker.shutdown();
}

#[test]
fn per_tile_deadline_fails_the_mosaic() {
    let _g = serial();
    let scene = small_scene();
    let worker = slow_worker("slow-deadline", 50, 16);
    let cfg = TileConfig {
        tile_deadline: Some(Duration::from_millis(1)),
        ..identity_cfg()
    };
    let started = Instant::now();
    let err = run_mosaic(&worker.client(), &scene, scene.extent(), cfg)
        .expect_err("1 ms per-tile budget against a 50 ms model must expire");
    assert!(matches!(err, ServeError::DeadlineExceeded(_)), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "cancellation must not wait for every tile to time out serially"
    );
    assert_no_leaked_slots(&worker);
    worker.shutdown();
}

#[test]
fn injected_fetch_fault_fails_the_mosaic_cleanly() {
    let _g = serial();
    let scene = small_scene();
    let worker = identity_worker("identity-fetch-fault", 16);
    fault::install(
        FaultPlan::new(chaos_seed()).on_nth("tile.fetch", 5, FaultAction::Error("disk gone".into())),
    );
    let err = run_mosaic(&worker.client(), &scene, scene.extent(), identity_cfg())
        .expect_err("a failed tile fetch must fail the whole mosaic");
    let log = fault::clear();
    assert!(matches!(err, ServeError::Internal(ref msg) if msg.contains("tile fetch")), "{err}");
    assert_eq!(log.len(), 1, "exactly the planned fault fired");
    assert_no_leaked_slots(&worker);
    // No partial mosaic escaped, and the worker is unharmed: a clean
    // rerun reproduces the scene.
    let (mosaic, _) =
        run_mosaic(&worker.client(), &scene, scene.extent(), identity_cfg()).unwrap();
    assert_eq!(mosaic.as_slice(), scene.as_slice());
    worker.shutdown();
}

#[test]
fn injected_stitch_fault_fails_the_mosaic_cleanly() {
    let _g = serial();
    let scene = small_scene();
    let worker = identity_worker("identity-stitch-fault", 16);
    fault::install(
        FaultPlan::new(chaos_seed()).on_nth("tile.stitch", 3, FaultAction::Error("bad blend".into())),
    );
    let err = run_mosaic(&worker.client(), &scene, scene.extent(), identity_cfg())
        .expect_err("a failed stitch must fail the whole mosaic");
    fault::clear();
    assert!(matches!(err, ServeError::Internal(ref msg) if msg.contains("tile stitch")), "{err}");
    assert_no_leaked_slots(&worker);
    let (mosaic, _) =
        run_mosaic(&worker.client(), &scene, scene.extent(), identity_cfg()).unwrap();
    assert_eq!(mosaic.as_slice(), scene.as_slice());
    worker.shutdown();
}

#[test]
fn config_validation_rejects_gap_and_alignment_hazards() {
    let _g = serial();
    let roi = Window::new(0, 0, 96, 96);
    let base = exact_cfg();
    assert!(base.validate(&roi).is_ok());
    let cases = [
        ("zero stride", TileConfig { stride: 0, ..base }),
        ("stride past tile", TileConfig { stride: 65, ..base }),
        ("tile exceeds roi", TileConfig { tile: 128, ..base }),
        ("halo eats tile", TileConfig { halo: 32, ..base }),
        ("core gaps", TileConfig { stride: 20, ..base }),
        ("misaligned stride", TileConfig { halo: 23, stride: 18, ..base }),
        ("zero classes", TileConfig { classes: 0, ..base }),
        ("zero in-flight", TileConfig { max_in_flight: 0, ..base }),
    ];
    for (what, cfg) in cases {
        let err = cfg.validate(&roi).expect_err(what);
        assert!(matches!(err, ServeError::BadRequest(_)), "{what}: {err}");
    }
    // Misaligned clamped tile: roi − tile not a multiple of alignment.
    let err = base.validate(&Window::new(0, 0, 94, 96)).unwrap_err();
    assert!(matches!(err, ServeError::BadRequest(ref m) if m.contains("alignment")), "{err}");
}
