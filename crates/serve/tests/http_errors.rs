//! Every documented HTTP error path, end to end over a real socket:
//! malformed JSON, wrong tensor shape, unknown model, oversized body,
//! premature disconnect, stalled (slow-loris) clients, and admission
//! shedding — each with its status code and its `serve.error.*` counter.
//!
//! Counters are process-global and monotonic, so every assertion is a
//! before/after delta (`≥ +1`), which stays correct when the tests in
//! this binary run in parallel.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use geotorch_nn::{Module, Var};
use geotorch_serve::{BatchConfig, Registry, ServeConfig, ServeModel, Server};
use geotorch_tensor::{Device, Tensor};
use serde::Value;

/// Doubles its input.
struct Echo;

impl Module for Echo {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for Echo {
    fn predict(&self, batch: &Var) -> Var {
        batch.mul_scalar(2.0)
    }
}

/// Accepts only `[B, 2]` batches — any other trailing shape is the
/// "wrong tensor shape" model failure.
struct Picky;

impl Module for Picky {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for Picky {
    fn predict(&self, batch: &Var) -> Var {
        assert!(
            batch.shape().len() == 2 && batch.shape()[1] == 2,
            "picky model wants [B, 2], got {:?}",
            batch.shape()
        );
        batch.mul_scalar(2.0)
    }
}

/// Sleeps before answering, to hold the admission slot.
struct Sleepy(u64);

impl Module for Sleepy {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

impl ServeModel for Sleepy {
    fn predict(&self, batch: &Var) -> Var {
        std::thread::sleep(Duration::from_millis(self.0));
        batch.mul_scalar(2.0)
    }
}

fn start_server(queue_bound: usize, socket_timeout_ms: u64, max_body: usize) -> Server {
    let mut registry = Registry::new();
    registry.register("echo", None, || Box::new(Echo) as Box<dyn ServeModel>);
    registry.register("picky", None, || Box::new(Picky) as Box<dyn ServeModel>);
    registry.register("sleepy", None, || Box::new(Sleepy(400)) as Box<dyn ServeModel>);
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait_ms: 1,
            device: Device::Cpu,
            queue_bound,
            replicas: 1,
        },
        http_workers: 4,
        enable_telemetry: true,
        default_deadline_ms: 10_000,
        socket_timeout_ms,
        max_body,
        drain_timeout_ms: 10_000,
    };
    Server::start("127.0.0.1:0", registry, config).expect("server starts")
}

/// One blocking request; returns (status, raw header block, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, payload) = response.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), payload.to_string())
}

/// The value of counter `name` in the `/metrics` snapshot.
fn counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "metrics endpoint must serve: {body}");
    let metrics: Value = serde_json::from_str(&body).expect("metrics is JSON");
    metrics
        .get("stats")
        .and_then(Value::as_array)
        .expect("stats array")
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
        .and_then(|s| s.get("count"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0) as u64
}

fn error_body(body: &str) -> String {
    let parsed: Value = serde_json::from_str(body).expect("error responses are JSON");
    parsed
        .get("error")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

fn payload_for(sample: &Tensor) -> String {
    serde_json::to_string(sample).expect("serialize")
}

#[test]
fn malformed_json_is_400_and_counted() {
    let server = start_server(16, 5_000, 1 << 20);
    let addr = server.addr();
    let before = counter(addr, "serve.error.bad_request");
    let (status, _, body) = http(addr, "POST", "/predict/echo", "this is {not json");
    assert_eq!(status, 400, "{body}");
    assert!(error_body(&body).contains("tensor payload"), "{body}");
    assert!(counter(addr, "serve.error.bad_request") > before);
    server.shutdown();
}

#[test]
fn wrong_tensor_shape_is_500_and_counted() {
    let server = start_server(16, 5_000, 1 << 20);
    let addr = server.addr();
    let before = counter(addr, "serve.error.internal");
    // A [3] sample batches to [B, 3]; the picky model wants [B, 2]. The
    // forward fails, the response is a clean 500, and the worker lives.
    let (status, _, body) =
        http(addr, "POST", "/predict/picky", &payload_for(&Tensor::zeros(&[3])));
    assert_eq!(status, 500, "{body}");
    assert!(counter(addr, "serve.error.internal") > before);
    let (status, _, body) = http(
        addr,
        "POST",
        "/predict/picky",
        &payload_for(&Tensor::from_vec(vec![1.0, 2.0], &[2])),
    );
    assert_eq!(status, 200, "the worker must survive a shape panic: {body}");
    server.shutdown();
}

#[test]
fn unknown_model_and_route_are_404_and_counted() {
    let server = start_server(16, 5_000, 1 << 20);
    let addr = server.addr();
    let before = counter(addr, "serve.error.not_found");
    let (status, _, body) = http(
        addr,
        "POST",
        "/predict/unregistered",
        &payload_for(&Tensor::zeros(&[2])),
    );
    assert_eq!(status, 404, "{body}");
    assert!(error_body(&body).contains("unregistered"), "{body}");
    let (status, _, _) = http(addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);
    assert!(counter(addr, "serve.error.not_found") >= before + 2);
    server.shutdown();
}

#[test]
fn oversized_body_is_413_and_counted() {
    let server = start_server(16, 5_000, 4096);
    let addr = server.addr();
    let before = counter(addr, "serve.error.too_large");
    let big = "x".repeat(8192);
    let (status, _, body) = http(addr, "POST", "/predict/echo", &big);
    assert_eq!(status, 413, "{body}");
    assert!(error_body(&body).contains("4096"), "the limit is named: {body}");
    assert!(counter(addr, "serve.error.too_large") > before);
    server.shutdown();
}

#[test]
fn premature_disconnect_is_counted_and_the_server_survives() {
    let server = start_server(16, 5_000, 1 << 20);
    let addr = server.addr();
    let before = counter(addr, "serve.error.disconnect");
    {
        // Promise 64 bytes of body, send 3, vanish.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!("POST /predict/echo HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 64\r\n\r\nabc")
                    .as_bytes(),
            )
            .expect("send partial request");
    } // dropped: the connection closes mid-body
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter(addr, "serve.error.disconnect") < before + 1 {
        assert!(
            Instant::now() < deadline,
            "the disconnect was never counted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // The worker that hit the disconnect is back in the accept loop.
    let (status, _, body) = http(
        addr,
        "POST",
        "/predict/echo",
        &payload_for(&Tensor::from_vec(vec![21.0], &[1])),
    );
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

#[test]
fn stalled_client_gets_408_within_the_socket_timeout() {
    let server = start_server(16, 300, 1 << 20);
    let addr = server.addr();
    let before = counter(addr, "serve.error.slow_client");
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    // Send nothing: a slow-loris client holding the worker hostage.
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let elapsed = started.elapsed();
    assert!(response.starts_with("HTTP/1.1 408"), "{response}");
    assert!(
        elapsed >= Duration::from_millis(250) && elapsed < Duration::from_secs(5),
        "the 408 must arrive at the socket timeout, took {elapsed:?}"
    );
    assert!(counter(addr, "serve.error.slow_client") > before);
    server.shutdown();
}

#[test]
fn shedding_over_http_is_429_with_retry_after() {
    let server = start_server(1, 5_000, 1 << 20);
    let addr = server.addr();
    let before = counter(addr, "serve.error.overloaded");
    let payload = payload_for(&Tensor::from_vec(vec![1.0], &[1]));
    let holder = std::thread::spawn({
        let payload = payload.clone();
        move || http(addr, "POST", "/predict/sleepy", &payload)
    });
    // Let the holder occupy the single admission slot (its model sleeps
    // 400 ms), then get shed.
    std::thread::sleep(Duration::from_millis(100));
    let (status, head, body) = http(addr, "POST", "/predict/sleepy", &payload);
    assert_eq!(status, 429, "{body}");
    assert!(
        head.to_ascii_lowercase().contains("retry-after"),
        "429 must carry Retry-After: {head}"
    );
    assert!(counter(addr, "serve.error.overloaded") > before);
    let (status, _, body) = holder.join().unwrap();
    assert_eq!(status, 200, "the admitted request is unaffected: {body}");
    server.shutdown();
}
