//! Portable fallback front for targets without the raw-syscall epoll
//! module (anything that isn't x86_64/aarch64 Linux): a small pool of
//! blocking accept threads, one connection handled at a time per
//! thread, reusing the shared incremental parser and keep-alive logic
//! from [`crate::http`]. Functionally equivalent — same status codes,
//! same counters, same keep-alive semantics — but a stalled client
//! does occupy a thread for up to the socket timeout, which is why the
//! epoll front is the real implementation wherever it compiles.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{
    count_error_status, error_json, route, send_response, try_parse, FrontState, Parsed,
};
use crate::ServeError;

const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);

/// The running fallback front: `http_workers` accept threads.
pub(crate) struct Front {
    front: Arc<FrontState>,
    addr: SocketAddr,
    joins: Vec<JoinHandle<()>>,
}

impl Front {
    pub(crate) fn start(
        listener: TcpListener,
        front: Arc<FrontState>,
        http_workers: usize,
    ) -> Result<Front, ServeError> {
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Internal(format!("local_addr failed: {e}")))?;
        let mut joins = Vec::new();
        for i in 0..http_workers.max(1) {
            let listener = listener
                .try_clone()
                .map_err(|e| ServeError::Internal(format!("listener clone failed: {e}")))?;
            let front = Arc::clone(&front);
            let join = std::thread::Builder::new()
                .name(format!("serve-http-{i}"))
                .spawn(move || accept_loop(&listener, &front))
                .map_err(|e| ServeError::Internal(format!("spawn failed: {e}")))?;
            joins.push(join);
        }
        Ok(Front { front, addr, joins })
    }

    pub(crate) fn stop(&mut self) {
        self.front.stop.store(true, Ordering::SeqCst);
        // Unblock every thread parked in accept() with one dummy
        // connection each; threads re-check the flag before handling.
        for _ in 0..self.joins.len() {
            TcpStream::connect(self.addr).ok();
        }
        for join in self.joins.drain(..) {
            join.join().ok();
        }
    }
}

fn accept_loop(listener: &TcpListener, front: &Arc<FrontState>) {
    let mut backoff = ACCEPT_BACKOFF_MIN;
    loop {
        if front.stop.load(Ordering::SeqCst) {
            return;
        }
        let failed = geotorch_telemetry::fault_point!("serve.http.accept").is_err();
        let stream = if failed {
            None
        } else {
            match listener.accept() {
                Ok((stream, _)) => Some(stream),
                Err(_) => None,
            }
        };
        let Some(mut stream) = stream else {
            // Transient accept failure (EMFILE, reset mid-handshake):
            // back off instead of hot-looping.
            geotorch_telemetry::count!("serve.error.accept", 1);
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            continue;
        };
        backoff = ACCEPT_BACKOFF_MIN;
        if front.stop.load(Ordering::SeqCst) {
            // Racing a shutdown: answer 503 instead of silently
            // dropping a connection we already accepted. (The wake-up
            // dummy connections land here too and ignore the bytes.)
            send_response(
                &mut stream,
                503,
                &[],
                &error_json("server is shutting down"),
                false,
            );
            return;
        }
        handle_connection(stream, front);
    }
}

/// Serve requests off one connection until it closes, errors, opts out
/// of keep-alive, or the server stops.
fn handle_connection(mut stream: TcpStream, front: &FrontState) {
    stream.set_read_timeout(Some(front.socket_timeout)).ok();
    stream.set_write_timeout(Some(front.socket_timeout)).ok();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut served = 0u64;
    let mut chunk = [0u8; 8192];
    'requests: loop {
        if let Err(msg) = geotorch_telemetry::fault_point!("serve.http.read") {
            respond_and_count(&mut stream, 500, &format!("injected read fault: {msg}"));
            return;
        }
        loop {
            match try_parse(&mut buf, front.max_body) {
                Parsed::NeedMore => match stream.read(&mut chunk) {
                    Ok(0) => {
                        if !buf.is_empty() || served == 0 {
                            geotorch_telemetry::count!("serve.error.disconnect", 1);
                            geotorch_telemetry::count!("serve.http.requests", 1);
                        }
                        return;
                    }
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if served == 0 || !buf.is_empty() {
                            respond_and_count(&mut stream, 408, "request timed out");
                        }
                        return;
                    }
                    Err(_) => {
                        geotorch_telemetry::count!("serve.error.disconnect", 1);
                        geotorch_telemetry::count!("serve.http.requests", 1);
                        return;
                    }
                },
                Parsed::Invalid(status, msg) => {
                    respond_and_count(&mut stream, status, &msg);
                    return;
                }
                Parsed::TooLarge {
                    content_length,
                    discard,
                } => {
                    // Discard the unread body so the close doesn't RST
                    // the 413 off the wire.
                    let mut remaining = discard;
                    while remaining > 0 {
                        match stream.read(&mut chunk) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => remaining = remaining.saturating_sub(n),
                        }
                    }
                    let max = front.max_body;
                    respond_and_count(
                        &mut stream,
                        413,
                        &format!("body of {content_length} bytes exceeds the {max} byte limit"),
                    );
                    return;
                }
                Parsed::Complete(request, leftover) => {
                    buf = leftover;
                    let (status, headers, body) = route(&request, front);
                    geotorch_telemetry::count!("serve.http.requests", 1);
                    count_error_status(status);
                    let keep = request.keep_alive && !front.stop.load(Ordering::SeqCst);
                    if !send_response(&mut stream, status, &headers, &body, keep) || !keep {
                        return;
                    }
                    served += 1;
                    continue 'requests;
                }
            }
        }
    }
}

fn respond_and_count(stream: &mut TcpStream, status: u16, msg: &str) {
    geotorch_telemetry::count!("serve.http.requests", 1);
    count_error_status(status);
    send_response(stream, status, &[], &error_json(msg), false);
}
