//! The dynamic micro-batching scheduler.
//!
//! Each served model is owned by one dedicated worker thread — the
//! autograd graph (`Rc`-based [`Var`]) is single-threaded by design, so
//! the model is built, checkpoint-loaded, and run entirely on that
//! thread. Callers talk to it through a cloneable [`ModelClient`]:
//! `predict` sends a sample-shaped tensor over a channel and blocks on a
//! one-shot reply.
//!
//! The worker drains its queue into batches: the first request opens a
//! batch and starts a `max_wait_ms` timer; more requests join until the
//! batch holds `max_batch` samples or the timer fires, whichever comes
//! first. Same-shaped samples are stacked into one `[K, ...]` tensor and
//! run through a single no-grad forward on the configured device (conv
//! and matmul kernels split over the batch axis on `Device::Parallel`,
//! which is where micro-batching beats one-forward-per-request); the
//! output rows are scattered back to the callers. Ragged shapes are
//! legal — a batch is partitioned into per-shape groups, one forward
//! each, so every caller gets exactly what a sequential forward would
//! have produced.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use geotorch_nn::{no_grad, Var};
use geotorch_tensor::{with_device, Device, Tensor};
use geotorch_telemetry::Stat;

use crate::{ServeError, ServeModel};

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Most samples stacked into one forward. `1` disables micro-batching
    /// (every request runs alone — the baseline the load generator
    /// compares against).
    pub max_batch: usize,
    /// How long an open batch waits for more requests before a partial
    /// batch is flushed.
    pub max_wait_ms: u64,
    /// Device the batched forward runs on.
    pub device: Device,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            max_wait_ms: 2,
            device: Device::parallel(),
        }
    }
}

struct Request {
    input: Tensor,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Tensor, ServeError>>,
}

/// Queue messages. `Shutdown` is an explicit sentinel (sent by
/// [`ModelWorker::shutdown`]/drop) so the worker can stop even while
/// [`ModelClient`] clones — which keep the channel connected — are still
/// alive. The queue is FIFO, so every request enqueued before the
/// sentinel is still served; requests sent after it fail.
enum Msg {
    Predict(Request),
    Shutdown,
}

/// Handle to a model owner thread. Dropping (or calling
/// [`ModelWorker::shutdown`]) stops the thread after the queue drains.
pub struct ModelWorker {
    name: String,
    tx: Option<mpsc::Sender<Msg>>,
    join: Option<JoinHandle<()>>,
}

/// Cheap, cloneable submission handle for one served model.
#[derive(Clone)]
pub struct ModelClient {
    name: String,
    tx: mpsc::Sender<Msg>,
}

impl ModelWorker {
    /// Spawn the owner thread for one model.
    ///
    /// `init` runs *on the worker thread* (models are not `Send`) and
    /// should construct the model and load its checkpoint; its error —
    /// e.g. a wrong-architecture checkpoint — is propagated back out of
    /// `spawn`, so a server never starts half-broken. The model is
    /// switched to eval mode before the first request is served.
    pub fn spawn<F>(name: &str, config: BatchConfig, init: F) -> Result<ModelWorker, ServeError>
    where
        F: FnOnce() -> Result<Box<dyn ServeModel>, ServeError> + Send + 'static,
    {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        let (tx, rx) = mpsc::channel::<Msg>();
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), ServeError>>();
        let thread_name = format!("serve-{name}");
        let stat_name = name.to_string();
        let join = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let model = match init() {
                    Ok(model) => model,
                    Err(e) => {
                        ready_tx.send(Err(e)).ok();
                        return;
                    }
                };
                // Serving is inference: running statistics frozen,
                // dropout off. Do it here, once, so no request can ever
                // observe a train-mode forward.
                model.set_training(false);
                ready_tx.send(Ok(())).ok();
                let model_stat = geotorch_telemetry::register_dynamic(format!(
                    "serve.model.{stat_name}"
                ));
                serve_loop(model.as_ref(), &rx, config, model_stat);
            })
            .map_err(|e| ServeError::Internal(format!("spawn failed: {e}")))?;
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(ModelWorker {
                name: name.to_string(),
                tx: Some(tx),
                join: Some(join),
            }),
            Ok(Err(e)) => {
                join.join().ok();
                Err(e)
            }
            Err(_) => {
                join.join().ok();
                Err(ServeError::Internal(
                    "model worker died during initialisation".to_string(),
                ))
            }
        }
    }

    /// The model name this worker serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A new submission handle.
    pub fn client(&self) -> ModelClient {
        ModelClient {
            name: self.name.clone(),
            tx: self.tx.as_ref().expect("worker is running").clone(),
        }
    }

    /// Stop the worker: every request already enqueued is still served,
    /// then the owner thread exits and is joined. Requests submitted
    /// after this call fail with [`ServeError::Internal`], even through
    /// [`ModelClient`] clones that outlive the worker.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(tx) = self.tx.take() {
            tx.send(Msg::Shutdown).ok();
        }
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
    }
}

impl Drop for ModelWorker {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ModelWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelWorker")
            .field("name", &self.name)
            .field("running", &self.tx.is_some())
            .finish()
    }
}

impl ModelClient {
    /// The model name requests go to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Predict one sample (shaped like a single batch row, e.g.
    /// `[C, H, W]`). Blocks until the scheduler has batched, run, and
    /// scattered the forward.
    pub fn predict(&self, sample: Tensor) -> Result<Tensor, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Msg::Predict(Request {
                input: sample,
                enqueued: Instant::now(),
                reply: reply_tx,
            }))
            .map_err(|_| ServeError::Internal("model worker has shut down".to_string()))?;
        reply_rx
            .recv()
            .map_err(|_| ServeError::Internal("model worker dropped the request".to_string()))?
    }
}

static REQUESTS: OnceLock<&'static Stat> = OnceLock::new();
static BATCHES: OnceLock<&'static Stat> = OnceLock::new();
static BATCH_SIZE: OnceLock<&'static Stat> = OnceLock::new();
static QUEUE_WAIT: OnceLock<&'static Stat> = OnceLock::new();

fn serve_loop(
    model: &dyn ServeModel,
    rx: &mpsc::Receiver<Msg>,
    config: BatchConfig,
    model_stat: &'static Stat,
) {
    loop {
        // Block for the head of the next batch; the shutdown sentinel
        // (or a fully disconnected channel) stops the worker.
        let first = match rx.recv() {
            Ok(Msg::Predict(r)) => r,
            Ok(Msg::Shutdown) | Err(_) => return,
        };
        let deadline = Instant::now() + Duration::from_millis(config.max_wait_ms);
        let mut batch = vec![first];
        let mut stopping = false;
        while batch.len() < config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(Msg::Predict(r)) => batch.push(r),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Ok(Msg::Shutdown) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                    stopping = true;
                    break;
                }
            }
        }
        run_batch(model, batch, config, model_stat);
        if stopping {
            return;
        }
    }
}

/// Partition a batch into same-shape groups (arrival order preserved
/// within each group), run one stacked forward per group, scatter the
/// rows back.
fn run_batch(
    model: &dyn ServeModel,
    batch: Vec<Request>,
    config: BatchConfig,
    model_stat: &'static Stat,
) {
    if geotorch_telemetry::enabled() {
        let now = Instant::now();
        geotorch_telemetry::stat(&REQUESTS, "serve.requests").add(batch.len() as u64);
        geotorch_telemetry::stat(&BATCHES, "serve.batches").add(1);
        geotorch_telemetry::stat(&BATCH_SIZE, "serve.batch_size").add(batch.len() as u64);
        let wait = geotorch_telemetry::stat(&QUEUE_WAIT, "serve.queue_wait");
        for r in &batch {
            wait.record_ns(now.duration_since(r.enqueued).as_nanos() as u64);
        }
        model_stat.add(batch.len() as u64);
    }

    let mut groups: Vec<(Vec<usize>, Vec<Request>)> = Vec::new();
    for request in batch {
        let shape = request.input.shape().to_vec();
        match groups.iter_mut().find(|(s, _)| *s == shape) {
            Some((_, members)) => members.push(request),
            None => groups.push((shape, vec![request])),
        }
    }

    for (shape, members) in groups {
        let inputs: Vec<&Tensor> = members.iter().map(|r| &r.input).collect();
        let stacked = Tensor::stack(&inputs);
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_device(config.device, || {
                no_grad(|| model.predict(&Var::constant(stacked)).value())
            })
        }));
        if geotorch_telemetry::enabled() {
            model_stat.record_ns(start.elapsed().as_nanos() as u64);
        }
        match result {
            Ok(output) if output.shape().first() == Some(&members.len()) => {
                for (i, request) in members.iter().enumerate() {
                    request.reply.send(Ok(output.index_axis(0, i))).ok();
                }
            }
            Ok(output) => {
                let err = ServeError::Internal(format!(
                    "model returned batch axis {:?} for {} inputs of shape {shape:?}",
                    output.shape().first(),
                    members.len()
                ));
                for request in &members {
                    request.reply.send(Err(err.clone())).ok();
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "forward pass panicked".to_string());
                let err = ServeError::Internal(format!("forward pass panicked: {msg}"));
                for request in &members {
                    request.reply.send(Err(err.clone())).ok();
                }
            }
        }
    }
}
