//! The dynamic micro-batching scheduler, sharded across model replicas.
//!
//! Each served model is owned by `replicas` dedicated worker threads —
//! the autograd graph (`Rc`-based [`Var`]) is single-threaded by design,
//! so every replica builds, checkpoint-loads, and runs its own copy of
//! the model entirely on its own thread (weights are immutable after
//! load, and the tensor pool's COW buffers make the per-replica copies
//! cheap in steady state). Callers talk to the shard through a cloneable
//! [`ModelClient`]: `predict` routes a sample-shaped tensor to the
//! least-loaded live replica's queue and blocks on a one-shot reply.
//!
//! Each replica drains its queue into batches: the first request opens a
//! batch and starts a `max_wait_ms` timer; more requests join until the
//! batch holds `max_batch` samples or the timer fires, whichever comes
//! first. Same-shaped samples are stacked into one `[K, ...]` tensor and
//! run through a single no-grad forward on the configured device (conv
//! and matmul kernels split over the batch axis on `Device::Parallel`,
//! which is where micro-batching beats one-forward-per-request); the
//! output rows are scattered back to the callers. Ragged shapes are
//! legal — a batch is partitioned into per-shape groups, one forward
//! each, so every caller gets exactly what a sequential forward would
//! have produced.
//!
//! # Robustness
//!
//! Three production concerns are enforced here rather than at the HTTP
//! edge, so they also protect embedded users of [`ModelClient`]:
//!
//! * **Bounded admission.** At most [`BatchConfig::queue_bound`]
//!   requests may be admitted-but-unanswered per model (summed across
//!   its replicas); the next one is shed with [`ServeError::Overloaded`]
//!   (HTTP 429) instead of growing the queues without limit. Crossing
//!   the high watermark (¾ of the bound) flips the model into a
//!   *pressured* state — reported by `/healthz` as `degraded` and by the
//!   `serve.backpressure` gauge — which clears only once the depth falls
//!   below the low watermark (¼), so health does not flap at the
//!   boundary.
//! * **Deadlines.** Every request can carry a deadline. Expired
//!   requests are answered with [`ServeError::DeadlineExceeded`] (HTTP
//!   504) at admission, when popped from the queue, and again right
//!   before the forward — an expired request never occupies a batch
//!   slot. The caller also stops waiting at its deadline, so no thread
//!   blocks forever on a wedged forward.
//! * **Graceful drain with a hard timeout.** Shutdown enqueues a FIFO
//!   sentinel per replica: every request admitted before it is still
//!   served, then the replica exits and is joined — but the join gives
//!   up after the drain timeout (counted as `serve.drain.timeout`) so a
//!   wedged model cannot block process exit.
//! * **Replica fail-over.** A replica whose thread dies (a panic escaped
//!   the per-batch isolation) is taken out of the routing set; the
//!   surviving replicas keep serving. `/healthz` reports the model as
//!   `dead` only once *every* replica is gone.
//!
//! Per-replica queue depths are exported as
//! `serve.replica_depth.<model>.<i>` gauges so an operator can see the
//! least-loaded routing do its job from `/metrics`.
//!
//! Fault points for chaos tests: `serve.batcher.forward` (before the
//! batched forward — a panic here kills the replica thread, which
//! `/healthz` must report) and `serve.batcher.model` (inside the
//! panic-isolated model call — a panic here fails one batch and the
//! replica survives).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use geotorch_nn::{no_grad, Var};
use geotorch_tensor::{with_device, Device, Tensor};
use geotorch_telemetry::Stat;

use crate::{ServeError, ServeModel};

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Most samples stacked into one forward. `1` disables micro-batching
    /// (every request runs alone — the baseline the load generator
    /// compares against).
    pub max_batch: usize,
    /// How long an open batch waits for more requests before a partial
    /// batch is flushed.
    pub max_wait_ms: u64,
    /// Device the batched forward runs on.
    pub device: Device,
    /// Most admitted-but-unanswered requests per model, summed across
    /// its replicas. The next request past the bound is shed with
    /// [`ServeError::Overloaded`] instead of queueing without limit.
    pub queue_bound: usize,
    /// Replica worker threads per model. Each replica owns its own copy
    /// of the model (built by running the registered constructor and
    /// checkpoint load on the replica thread) and its own batch queue;
    /// requests are routed to the least-loaded live replica. `1` (the
    /// default) reproduces the single-owner-thread behaviour exactly.
    pub replicas: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            max_wait_ms: 2,
            device: Device::parallel(),
            queue_bound: 64,
            replicas: 1,
        }
    }
}

/// Process-wide queue depth across every live model worker, exported as
/// the `serve.queue_depth` gauge.
static GLOBAL_DEPTH: AtomicU64 = AtomicU64::new(0);
/// Number of workers currently past their high watermark, exported as
/// the `serve.backpressure` gauge.
static GLOBAL_PRESSURED: AtomicU64 = AtomicU64::new(0);

fn register_gauges() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        geotorch_telemetry::register_gauge("serve.queue_depth", || {
            GLOBAL_DEPTH.load(Ordering::Relaxed)
        });
        geotorch_telemetry::register_gauge("serve.backpressure", || {
            GLOBAL_PRESSURED.load(Ordering::Relaxed)
        });
    });
}

/// A full weight set staged for hot-swap, shared read-only across the
/// replica threads (tensor storage is `Arc`-backed, so the share is
/// O(parameter count), not O(bytes)).
struct SwapPayload {
    label: Arc<str>,
    state: Vec<Tensor>,
}

/// The hot-swap mailbox: [`ModelClient::install_weights`] stages a new
/// weight set here and bumps the generation; each replica notices the
/// bump *between batches*, loads the staged state dict into its own
/// model copy, and starts tagging replies with the new version label.
/// In-flight batches always complete on the weights they started with —
/// the swap happens on the replica thread, which is never mid-forward
/// when it checks.
struct SwapCell {
    gen: AtomicU64,
    staged: Mutex<Option<Arc<SwapPayload>>>,
}

impl SwapCell {
    fn new() -> SwapCell {
        SwapCell {
            gen: AtomicU64::new(0),
            staged: Mutex::new(None),
        }
    }
}

/// One replica's routing state: in-flight count and liveness.
pub(crate) struct ReplicaState {
    /// Requests routed to this replica and not yet answered.
    depth: AtomicUsize,
    alive: AtomicBool,
    died: AtomicBool,
}

impl ReplicaState {
    fn new() -> ReplicaState {
        ReplicaState {
            depth: AtomicUsize::new(0),
            alive: AtomicBool::new(true),
            died: AtomicBool::new(false),
        }
    }
}

/// Shared between a model's replicas, its clients, and `/healthz`:
/// model-global admission accounting plus per-replica liveness/load.
pub(crate) struct WorkerState {
    depth: AtomicUsize,
    bound: usize,
    pressured: AtomicBool,
    replicas: Vec<ReplicaState>,
    swap: SwapCell,
}

impl WorkerState {
    fn new(bound: usize, replicas: usize) -> WorkerState {
        register_gauges();
        WorkerState {
            depth: AtomicUsize::new(0),
            bound: bound.max(1),
            pressured: AtomicBool::new(false),
            replicas: (0..replicas.max(1)).map(|_| ReplicaState::new()).collect(),
            swap: SwapCell::new(),
        }
    }

    fn high_watermark(&self) -> usize {
        (self.bound * 3 / 4).max(1)
    }

    fn low_watermark(&self) -> usize {
        self.bound / 4
    }

    /// Whether any replica is still serving.
    fn is_alive(&self) -> bool {
        self.replicas.iter().any(|r| r.alive.load(Ordering::SeqCst))
    }

    /// Whether every replica is gone and at least one died abnormally.
    /// A partially dead shard keeps serving on the survivors; `/healthz`
    /// only reports `dead` once nothing is left to route to.
    fn has_died(&self) -> bool {
        !self.is_alive() && self.replicas.iter().any(|r| r.died.load(Ordering::SeqCst))
    }

    fn mark_stopped(&self, replica: usize, died: bool) {
        self.replicas[replica].alive.store(false, Ordering::SeqCst);
        if died {
            self.replicas[replica].died.store(true, Ordering::SeqCst);
        }
    }
}

/// Decrements the admission accounting when the request it rides on is
/// answered (or dropped), whichever thread that happens on.
struct AdmitGuard {
    state: Arc<WorkerState>,
}

impl AdmitGuard {
    fn admit(state: &Arc<WorkerState>) -> Result<AdmitGuard, ServeError> {
        let prev = state.depth.fetch_add(1, Ordering::SeqCst);
        if prev >= state.bound {
            state.depth.fetch_sub(1, Ordering::SeqCst);
            geotorch_telemetry::count!("serve.shed", 1);
            return Err(ServeError::Overloaded(format!(
                "queue is full ({} admitted, bound {})",
                prev, state.bound
            )));
        }
        GLOBAL_DEPTH.fetch_add(1, Ordering::Relaxed);
        if prev + 1 >= state.high_watermark()
            && state
                .pressured
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            GLOBAL_PRESSURED.fetch_add(1, Ordering::Relaxed);
        }
        Ok(AdmitGuard {
            state: Arc::clone(state),
        })
    }
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        let now = self.state.depth.fetch_sub(1, Ordering::SeqCst) - 1;
        GLOBAL_DEPTH.fetch_sub(1, Ordering::Relaxed);
        if now <= self.state.low_watermark()
            && self
                .state
                .pressured
                .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            GLOBAL_PRESSURED.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Holds one replica's in-flight slot; picked least-loaded at submission
/// and released (on whichever thread answers) when the request is done.
struct ReplicaSlot {
    state: Arc<WorkerState>,
    idx: usize,
}

impl ReplicaSlot {
    /// Route to the live replica with the fewest in-flight requests
    /// (ties go to the lowest index). `None` when every replica is gone.
    fn take(state: &Arc<WorkerState>) -> Option<ReplicaSlot> {
        let idx = state
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive.load(Ordering::SeqCst))
            .min_by_key(|(_, r)| r.depth.load(Ordering::SeqCst))?
            .0;
        state.replicas[idx].depth.fetch_add(1, Ordering::SeqCst);
        Some(ReplicaSlot {
            state: Arc::clone(state),
            idx,
        })
    }
}

impl Drop for ReplicaSlot {
    fn drop(&mut self) {
        self.state.replicas[self.idx]
            .depth
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// What a successful prediction carries back: the output row plus the
/// label of the model version that produced it (so every response is
/// attributable to exactly one published checkpoint).
type Reply = Result<(Tensor, Arc<str>), ServeError>;

struct Request {
    input: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Reply>,
    /// Held until the request is answered or dropped; releases the
    /// admission slot either way.
    _admit: AdmitGuard,
    /// Same lifecycle for the routed replica's in-flight count.
    _slot: ReplicaSlot,
}

/// Queue messages. `Shutdown` is an explicit sentinel (sent by
/// [`ModelWorker::shutdown`]/drop, one per replica) so a replica can
/// stop even while [`ModelClient`] clones — which keep the channel
/// connected — are still alive. Each queue is FIFO, so every request
/// enqueued before the sentinel is still served; requests sent after it
/// fail.
enum Msg {
    Predict(Request),
    /// Nudge: new weights were staged in the [`SwapCell`]. Wakes a
    /// parked replica so an idle model still swaps promptly; carries no
    /// data (the cell does).
    Swap,
    Shutdown,
}

/// One replica's owner thread plumbing.
struct ReplicaHandle {
    tx: Option<mpsc::Sender<Msg>>,
    join: Option<JoinHandle<()>>,
    done_rx: mpsc::Receiver<()>,
}

/// Handle to a model's replica shard. Dropping (or calling
/// [`ModelWorker::shutdown`]) stops every replica after its queue
/// drains.
pub struct ModelWorker {
    name: String,
    replicas: Vec<ReplicaHandle>,
    state: Arc<WorkerState>,
}

/// Cheap, cloneable submission handle for one served model. Routes each
/// request to the least-loaded live replica.
#[derive(Clone)]
pub struct ModelClient {
    name: String,
    txs: Vec<mpsc::Sender<Msg>>,
    state: Arc<WorkerState>,
}

impl ModelWorker {
    /// Spawn the replica threads for one model.
    ///
    /// `init` runs once *on each replica thread* (models are not `Send`,
    /// so every replica constructs its own copy and loads its own
    /// checkpoint); the first error — e.g. a wrong-architecture
    /// checkpoint — is propagated back out of `spawn` and the already-
    /// started replicas are torn down, so a server never starts
    /// half-broken. Every replica is switched to eval mode before its
    /// first request.
    pub fn spawn<F>(name: &str, config: BatchConfig, init: F) -> Result<ModelWorker, ServeError>
    where
        F: Fn() -> Result<Box<dyn ServeModel>, ServeError> + Send + Sync + 'static,
    {
        ModelWorker::spawn_versioned(name, config, "v0", init)
    }

    /// Like [`ModelWorker::spawn`], with an explicit label for the
    /// weight set the replicas start serving (e.g. the manifest id of
    /// the checkpoint loaded at init). Replies are tagged with the
    /// label until a hot-swap installs a newer one.
    pub fn spawn_versioned<F>(
        name: &str,
        config: BatchConfig,
        initial_version: &str,
        init: F,
    ) -> Result<ModelWorker, ServeError>
    where
        F: Fn() -> Result<Box<dyn ServeModel>, ServeError> + Send + Sync + 'static,
    {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        let n = config.replicas.max(1);
        let initial_version: Arc<str> = Arc::from(initial_version);
        let state = Arc::new(WorkerState::new(config.queue_bound, n));
        let init: Arc<F> = Arc::new(init);
        let mut replicas = Vec::with_capacity(n);
        let mut readies = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel::<Msg>();
            let (ready_tx, ready_rx) = mpsc::channel::<Result<(), ServeError>>();
            let (done_tx, done_rx) = mpsc::channel::<()>();
            let thread_state = Arc::clone(&state);
            let init = Arc::clone(&init);
            let stat_name = name.to_string();
            let version = Arc::clone(&initial_version);
            let join = std::thread::Builder::new()
                .name(format!("serve-{name}-r{i}"))
                .spawn(move || {
                    let model = match init() {
                        Ok(model) => model,
                        Err(e) => {
                            thread_state.mark_stopped(i, false);
                            ready_tx.send(Err(e)).ok();
                            return;
                        }
                    };
                    // Serving is inference: running statistics frozen,
                    // dropout off. Do it here, once, so no request can
                    // ever observe a train-mode forward.
                    model.set_training(false);
                    ready_tx.send(Ok(())).ok();
                    let model_stat = geotorch_telemetry::register_dynamic(format!(
                        "serve.model.{stat_name}"
                    ));
                    // A panic past this point (e.g. an injected fault
                    // outside the per-batch isolation) kills only this
                    // replica: routing skips it, and `/healthz` flips
                    // the model to dead once no replica is left.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        serve_loop(model.as_ref(), &rx, config, model_stat, &thread_state, version)
                    }));
                    thread_state.mark_stopped(i, outcome.is_err());
                    if outcome.is_err() {
                        geotorch_telemetry::count!("serve.worker.died", 1);
                    }
                    done_tx.send(()).ok();
                })
                .map_err(|e| ServeError::Internal(format!("spawn failed: {e}")))?;
            replicas.push(ReplicaHandle {
                tx: Some(tx),
                join: Some(join),
                done_rx,
            });
            readies.push(ready_rx);
        }
        let mut worker = ModelWorker {
            name: name.to_string(),
            replicas,
            state,
        };
        for ready_rx in &readies {
            let ready = ready_rx.recv().unwrap_or_else(|_| {
                Err(ServeError::Internal(
                    "model worker died during initialisation".to_string(),
                ))
            });
            if let Err(e) = ready {
                // Tear the healthy replicas down before reporting: drop
                // every queue (the replica loops exit on disconnect) and
                // join the threads.
                worker.stop(Duration::from_secs(30));
                return Err(e);
            }
        }
        for i in 0..n {
            let state = Arc::clone(&worker.state);
            geotorch_telemetry::register_gauge_dynamic(
                format!("serve.replica_depth.{name}.{i}"),
                move || state.replicas[i].depth.load(Ordering::Relaxed) as u64,
            );
        }
        Ok(worker)
    }

    /// The model name this worker serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of replica threads serving this model.
    pub fn replicas(&self) -> usize {
        self.state.replicas.len()
    }

    /// A new submission handle.
    pub fn client(&self) -> ModelClient {
        ModelClient {
            name: self.name.clone(),
            txs: self
                .replicas
                .iter()
                .map(|r| r.tx.as_ref().expect("worker is running").clone())
                .collect(),
            state: Arc::clone(&self.state),
        }
    }

    /// Whether any replica is still serving. `false` after a clean
    /// shutdown *or* once every replica died — see
    /// [`ModelWorker::has_died`].
    pub fn is_alive(&self) -> bool {
        self.state.is_alive()
    }

    /// Whether the model is gone because of abnormal exits: no replica
    /// is serving and at least one died (a panic escaped the per-batch
    /// isolation).
    pub fn has_died(&self) -> bool {
        self.state.has_died()
    }

    /// Stop every replica: requests already enqueued are still served,
    /// then the replica threads exit and are joined. Requests submitted
    /// after this call fail, even through [`ModelClient`] clones that
    /// outlive the worker. Waits up to 30 s — use
    /// [`ModelWorker::shutdown_within`] to pick the hard timeout.
    pub fn shutdown(mut self) {
        self.stop(Duration::from_secs(30));
    }

    /// Like [`ModelWorker::shutdown`] with an explicit hard timeout
    /// shared across the replicas. Returns `false` when the drain timed
    /// out on any replica: its sentinel is still queued so it exits when
    /// it unwedges, but the thread is detached instead of joined (and
    /// `serve.drain.timeout` counts it).
    pub fn shutdown_within(mut self, timeout: Duration) -> bool {
        self.stop(timeout)
    }

    fn stop(&mut self, timeout: Duration) -> bool {
        for replica in &mut self.replicas {
            if let Some(tx) = replica.tx.take() {
                tx.send(Msg::Shutdown).ok();
            }
        }
        let deadline = Instant::now() + timeout;
        let mut drained = true;
        for replica in &mut self.replicas {
            let Some(join) = replica.join.take() else {
                continue;
            };
            let left = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            match replica.done_rx.recv_timeout(left) {
                // Normal exit (or the replica was already gone): the
                // thread is past its loop, so this join returns
                // immediately.
                Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                    join.join().ok();
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    geotorch_telemetry::count!("serve.drain.timeout", 1);
                    drop(join);
                    drained = false;
                }
            }
        }
        drained
    }
}

impl Drop for ModelWorker {
    fn drop(&mut self) {
        self.stop(Duration::from_secs(30));
    }
}

impl std::fmt::Debug for ModelWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelWorker")
            .field("name", &self.name)
            .field("replicas", &self.replicas.len())
            .field("running", &self.replicas.iter().any(|r| r.tx.is_some()))
            .field("alive", &self.is_alive())
            .field("queue_depth", &self.state.depth.load(Ordering::SeqCst))
            .finish()
    }
}

impl ModelClient {
    /// The model name requests go to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Admitted-but-unanswered requests right now, across all replicas.
    pub fn queue_depth(&self) -> usize {
        self.state.depth.load(Ordering::SeqCst)
    }

    /// The admission bound this model was spawned with.
    pub fn queue_bound(&self) -> usize {
        self.state.bound
    }

    /// Number of replica threads serving this model.
    pub fn replicas(&self) -> usize {
        self.state.replicas.len()
    }

    /// In-flight requests per replica — what least-loaded routing sees.
    pub fn replica_depths(&self) -> Vec<usize> {
        self.state
            .replicas
            .iter()
            .map(|r| r.depth.load(Ordering::SeqCst))
            .collect()
    }

    /// Whether the queue is past its high watermark (and has not yet
    /// fallen back below the low watermark).
    pub fn is_pressured(&self) -> bool {
        self.state.pressured.load(Ordering::SeqCst)
    }

    /// Whether any replica is still serving.
    pub fn is_alive(&self) -> bool {
        self.state.is_alive()
    }

    /// Whether every replica is gone and at least one exited abnormally.
    pub fn has_died(&self) -> bool {
        self.state.has_died()
    }

    /// Predict one sample (shaped like a single batch row, e.g.
    /// `[C, H, W]`) with no deadline. Blocks until the scheduler has
    /// batched, run, and scattered the forward. Subject to admission
    /// control: sheds with [`ServeError::Overloaded`] when the queue
    /// bound is reached.
    pub fn predict(&self, sample: Tensor) -> Result<Tensor, ServeError> {
        self.predict_with_deadline(sample, None)
    }

    /// Like [`ModelClient::predict`], but give the request `budget` to
    /// complete. An expired request is answered with
    /// [`ServeError::DeadlineExceeded`] — checked at admission, when the
    /// scheduler pops it, before the forward, and by this caller while
    /// it waits — and never occupies a batch slot once expired.
    pub fn predict_with_deadline(
        &self,
        sample: Tensor,
        budget: Option<Duration>,
    ) -> Result<Tensor, ServeError> {
        self.predict_versioned(sample, budget).map(|(t, _)| t)
    }

    /// Like [`ModelClient::predict_with_deadline`], additionally
    /// returning the label of the model version that produced the
    /// prediction (the checkpoint/manifest id the serving replica had
    /// installed when the batch ran). Every successful response is
    /// attributable to exactly one published weight set.
    pub fn predict_versioned(
        &self,
        sample: Tensor,
        budget: Option<Duration>,
    ) -> Result<(Tensor, Arc<str>), ServeError> {
        if !self.state.is_alive() {
            return Err(self.gone_error());
        }
        let admit = AdmitGuard::admit(&self.state)?;
        let now = Instant::now();
        let deadline = budget.map(|b| now + b);
        if budget == Some(Duration::ZERO) {
            geotorch_telemetry::count!("serve.expired", 1);
            return Err(ServeError::DeadlineExceeded(
                "deadline expired before admission".to_string(),
            ));
        }
        let Some(slot) = ReplicaSlot::take(&self.state) else {
            return Err(self.gone_error());
        };
        let replica = slot.idx;
        let (reply_tx, reply_rx) = mpsc::channel();
        self.txs[replica]
            .send(Msg::Predict(Request {
                input: sample,
                enqueued: now,
                deadline,
                reply: reply_tx,
                _admit: admit,
                _slot: slot,
            }))
            .map_err(|_| self.gone_error())?;
        match deadline {
            None => reply_rx.recv().map_err(|_| self.gone_error())?,
            Some(deadline) => loop {
                let now = Instant::now();
                if now >= deadline {
                    // The replica may still answer later (e.g. a wedged
                    // forward); the reply then lands in a dropped
                    // channel. Give up here so no caller outlives its
                    // own deadline.
                    geotorch_telemetry::count!("serve.expired", 1);
                    break Err(ServeError::DeadlineExceeded(
                        "deadline expired while waiting for the model".to_string(),
                    ));
                }
                match reply_rx.recv_timeout(deadline - now) {
                    Ok(result) => break result,
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break Err(self.gone_error()),
                }
            },
        }
    }

    /// Stage a new weight set and ask every replica to hot-swap to it
    /// *between batches*. Returns as soon as the payload is staged: each
    /// replica applies it before opening its next batch (a parked
    /// replica is woken by a nudge message), in-flight requests complete
    /// on the weights they were batched with, and no request is dropped.
    /// `label` tags all subsequent replies (and the HTTP
    /// `X-Model-Version` header) so responses stay attributable.
    ///
    /// The staged state dict is validated per-replica by
    /// `load_state_dict`, which checks every shape before assigning
    /// anything — a mismatched payload leaves the old weights serving.
    pub fn install_weights(&self, label: &str, state: Vec<Tensor>) -> Result<(), ServeError> {
        if !self.state.is_alive() {
            return Err(self.gone_error());
        }
        let payload = Arc::new(SwapPayload {
            label: Arc::from(label),
            state,
        });
        *self
            .state
            .swap
            .staged
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(payload);
        self.state.swap.gen.fetch_add(1, Ordering::Release);
        // Wake parked replicas so an idle model swaps promptly. A dead
        // replica's closed channel is fine — the nudge just goes nowhere.
        for tx in &self.txs {
            tx.send(Msg::Swap).ok();
        }
        Ok(())
    }

    fn gone_error(&self) -> ServeError {
        if self.state.has_died() {
            ServeError::Unavailable(format!("model worker `{}` died", self.name))
        } else if !self.state.is_alive() {
            ServeError::Unavailable(format!("model worker `{}` has shut down", self.name))
        } else {
            ServeError::Internal("model worker dropped the request".to_string())
        }
    }
}

static REQUESTS: OnceLock<&'static Stat> = OnceLock::new();
static BATCHES: OnceLock<&'static Stat> = OnceLock::new();
static BATCH_SIZE: OnceLock<&'static Stat> = OnceLock::new();
static QUEUE_WAIT: OnceLock<&'static Stat> = OnceLock::new();

/// Deliver a request's answer, releasing its admission slot and replica
/// in-flight count *before* the reply is sent. The order matters on a
/// busy host: if the reply lands first and this thread is preempted,
/// the caller can observe the response, come back with a new request,
/// and get shed by a slot that is still accounted to the old one.
fn answer(request: Request, result: Reply) {
    let Request {
        reply,
        _admit: admit,
        _slot: slot,
        ..
    } = request;
    drop(admit);
    drop(slot);
    reply.send(result).ok();
}

/// Answer an expired request with 504 and drop it (releasing its
/// admission slot). Returns the request back when it still has time on
/// the clock.
fn reject_if_expired(request: Request) -> Option<Request> {
    match request.deadline {
        Some(deadline) if Instant::now() >= deadline => {
            geotorch_telemetry::count!("serve.expired", 1);
            answer(
                request,
                Err(ServeError::DeadlineExceeded(
                    "deadline expired in the batch queue".to_string(),
                )),
            );
            None
        }
        _ => Some(request),
    }
}

/// Apply a staged hot-swap if the generation moved. Runs on the replica
/// thread *between batches only*, so a batch that already started its
/// forward always completes on the weights it began with.
///
/// Failure semantics: an injected `registry.sync.swap` fault leaves the
/// generation unacknowledged, so the swap is retried before the next
/// batch — the replica keeps serving (and labelling) the old weights
/// until a retry succeeds. A structural failure (state dict mismatch)
/// can never succeed, so it is counted and acknowledged; the publish
/// path validates shapes before staging, making that path unreachable
/// in normal operation.
fn maybe_swap(
    model: &dyn ServeModel,
    state: &WorkerState,
    seen_gen: &mut u64,
    version: &mut Arc<str>,
) {
    let gen = state.swap.gen.load(Ordering::Acquire);
    if gen == *seen_gen {
        return;
    }
    let staged = state.swap.staged.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let Some(staged) = staged else {
        *seen_gen = gen;
        return;
    };
    // Chaos hook for the swap window: a failed swap must leave the old
    // weights serving byte-identically, and the retry (next batch, or
    // the next Msg::Swap nudge) must converge once the fault clears.
    if let Err(msg) = geotorch_telemetry::fault_point!("registry.sync.swap") {
        let _ = msg;
        geotorch_telemetry::count!("serve.swap.failed", 1);
        return;
    }
    match model.load_state_dict(&staged.state) {
        Ok(()) => {
            *version = Arc::clone(&staged.label);
            *seen_gen = gen;
            geotorch_telemetry::count!("serve.swap.applied", 1);
        }
        Err(e) => {
            // load_state_dict validates every shape before assigning
            // anything, so the model is untouched here.
            let _ = e;
            *seen_gen = gen;
            geotorch_telemetry::count!("serve.swap.failed", 1);
        }
    }
}

fn serve_loop(
    model: &dyn ServeModel,
    rx: &mpsc::Receiver<Msg>,
    config: BatchConfig,
    model_stat: &'static Stat,
    state: &WorkerState,
    initial_version: Arc<str>,
) {
    let mut version = initial_version;
    let mut seen_gen = 0u64;
    loop {
        // Between batches is the only place weights may change.
        maybe_swap(model, state, &mut seen_gen, &mut version);
        // Block for the head of the next batch; the shutdown sentinel
        // (or a fully disconnected channel) stops the replica. Requests
        // that expired while queued are answered with 504 and never
        // open a batch.
        let first = match rx.recv() {
            Ok(Msg::Predict(r)) => match reject_if_expired(r) {
                Some(r) => r,
                None => continue,
            },
            // Re-run the swap check, then park again.
            Ok(Msg::Swap) => continue,
            Ok(Msg::Shutdown) | Err(_) => return,
        };
        let deadline = Instant::now() + Duration::from_millis(config.max_wait_ms);
        let mut batch = vec![first];
        let mut stopping = false;
        while batch.len() < config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(Msg::Predict(r)) => {
                    if let Some(r) = reject_if_expired(r) {
                        batch.push(r);
                    }
                }
                // Applied after this batch completes — never mid-batch.
                Ok(Msg::Swap) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Ok(Msg::Shutdown) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                    stopping = true;
                    break;
                }
            }
        }
        run_batch(model, batch, config, model_stat, &version);
        if stopping {
            return;
        }
    }
}

/// Partition a batch into same-shape groups (arrival order preserved
/// within each group), run one stacked forward per group, scatter the
/// rows back.
fn run_batch(
    model: &dyn ServeModel,
    batch: Vec<Request>,
    config: BatchConfig,
    model_stat: &'static Stat,
    version: &Arc<str>,
) {
    // Last deadline check before the forward: a request that expired
    // while the batch window was open must not take a batch slot.
    let batch: Vec<Request> = batch.into_iter().filter_map(reject_if_expired).collect();
    if batch.is_empty() {
        return;
    }
    if geotorch_telemetry::enabled() {
        let now = Instant::now();
        geotorch_telemetry::stat(&REQUESTS, "serve.requests").add(batch.len() as u64);
        geotorch_telemetry::stat(&BATCHES, "serve.batches").add(1);
        geotorch_telemetry::stat(&BATCH_SIZE, "serve.batch_size").add(batch.len() as u64);
        let wait = geotorch_telemetry::stat(&QUEUE_WAIT, "serve.queue_wait");
        for r in &batch {
            wait.record_ns(now.duration_since(r.enqueued).as_nanos() as u64);
        }
        model_stat.add(batch.len() as u64);
    }

    let mut groups: Vec<(Vec<usize>, Vec<Request>)> = Vec::new();
    for request in batch {
        let shape = request.input.shape().to_vec();
        match groups.iter_mut().find(|(s, _)| *s == shape) {
            Some((_, members)) => members.push(request),
            None => groups.push((shape, vec![request])),
        }
    }

    for (shape, members) in groups {
        // Chaos hook *outside* the panic isolation: an injected error
        // fails this group cleanly, an injected panic kills the replica
        // thread (the scenario `/healthz` must surface as degraded).
        if let Err(msg) = geotorch_telemetry::fault_point!("serve.batcher.forward") {
            let err = ServeError::Internal(format!("injected batcher fault: {msg}"));
            for request in members {
                answer(request, Err(err.clone()));
            }
            continue;
        }
        let inputs: Vec<&Tensor> = members.iter().map(|r| &r.input).collect();
        let stacked = Tensor::stack(&inputs);
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Chaos hook *inside* the isolation: behaves like a model
            // bug — the batch fails, the replica survives.
            if let Err(msg) = geotorch_telemetry::fault_point!("serve.batcher.model") {
                panic!("injected model fault: {msg}");
            }
            with_device(config.device, || {
                no_grad(|| model.predict(&Var::constant(stacked)).value())
            })
        }));
        if geotorch_telemetry::enabled() {
            model_stat.record_ns(start.elapsed().as_nanos() as u64);
        }
        match result {
            Ok(output) if output.shape().first() == Some(&members.len()) => {
                for (i, request) in members.into_iter().enumerate() {
                    answer(request, Ok((output.index_axis(0, i), Arc::clone(version))));
                }
            }
            Ok(output) => {
                let err = ServeError::Internal(format!(
                    "model returned batch axis {:?} for {} inputs of shape {shape:?}",
                    output.shape().first(),
                    members.len()
                ));
                for request in members {
                    answer(request, Err(err.clone()));
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "forward pass panicked".to_string());
                let err = ServeError::Internal(format!("forward pass panicked: {msg}"));
                for request in members {
                    answer(request, Err(err.clone()));
                }
            }
        }
    }
}
