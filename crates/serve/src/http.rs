//! A hand-rolled HTTP/1.1 server over `std::net::TcpListener`.
//!
//! No external HTTP dependency: requests are parsed with a small
//! byte-scanner (request line, headers, `Content-Length` body), bodies
//! are JSON rendered through the vendored `serde_json`. A fixed pool of
//! worker threads shares the listener (each holds its own
//! `try_clone`d handle and blocks in `accept`), so slow clients only
//! stall their own worker.
//!
//! | Endpoint | Method | Body | Response |
//! |---|---|---|---|
//! | `/predict/<model>` | POST | `{"shape": [...], "data": [...]}` (one sample, no batch axis) | `{"model": ..., "shape": [...], "data": [...]}` |
//! | `/healthz` | GET | — | `{"status": "ok", "models": [...]}` |
//! | `/metrics` | GET | — | `geotorch-telemetry` snapshot (`serve.*` stats included) |

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use geotorch_tensor::Tensor;
use serde::{Serialize, Value};

use crate::batcher::{BatchConfig, ModelClient, ModelWorker};
use crate::{Registry, ServeError};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Micro-batching knobs shared by every served model.
    pub batch: BatchConfig,
    /// HTTP worker threads sharing the accept loop.
    pub http_workers: usize,
    /// Turn on `geotorch-telemetry` recording at startup so `/metrics`
    /// has data. Leave `false` to manage telemetry yourself.
    pub enable_telemetry: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch: BatchConfig::default(),
            http_workers: 4,
            enable_telemetry: true,
        }
    }
}

/// Largest accepted request body (a guard against hostile
/// `Content-Length`, not a tuning knob).
const MAX_BODY: usize = 64 << 20;

/// A running inference server: model owner threads plus an HTTP front.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    http_joins: Vec<JoinHandle<()>>,
    workers: BTreeMap<String, ModelWorker>,
}

impl Server {
    /// Build every registered model (loading checkpoints, eval mode),
    /// bind `addr` (use port 0 for an ephemeral port), and start
    /// serving. Any model that fails to build or load aborts startup
    /// with the error.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Registry,
        config: ServeConfig,
    ) -> Result<Server, ServeError> {
        if config.enable_telemetry {
            geotorch_telemetry::set_enabled(true);
        }
        let workers = registry.spawn_all(config.batch)?;
        let clients: BTreeMap<String, ModelClient> = workers
            .iter()
            .map(|(name, w)| (name.clone(), w.client()))
            .collect();
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Internal(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Internal(format!("local_addr failed: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut http_joins = Vec::new();
        for i in 0..config.http_workers.max(1) {
            let listener = listener
                .try_clone()
                .map_err(|e| ServeError::Internal(format!("listener clone failed: {e}")))?;
            let clients = clients.clone();
            let shutdown = Arc::clone(&shutdown);
            let join = std::thread::Builder::new()
                .name(format!("serve-http-{i}"))
                .spawn(move || accept_loop(&listener, &clients, &shutdown))
                .map_err(|e| ServeError::Internal(format!("spawn failed: {e}")))?;
            http_joins.push(join);
        }
        Ok(Server {
            addr,
            shutdown,
            http_joins,
            workers,
        })
    }

    /// The bound address (resolves the actual port when started on 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Names of the models being served.
    pub fn models(&self) -> Vec<String> {
        self.workers.keys().cloned().collect()
    }

    /// Stop accepting connections, drain in-flight work, join every
    /// thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock every worker parked in accept() with one dummy
        // connection each; workers re-check the flag before handling.
        for _ in 0..self.http_joins.len() {
            TcpStream::connect(self.addr).ok();
        }
        for join in self.http_joins.drain(..) {
            join.join().ok();
        }
        // HTTP workers (and their ModelClient clones) are gone; dropping
        // the workers disconnects each model channel and joins the
        // owner threads.
        std::mem::take(&mut self.workers);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    clients: &BTreeMap<String, ModelClient>,
    shutdown: &AtomicBool,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        handle_connection(stream, clients);
    }
}

fn handle_connection(mut stream: TcpStream, clients: &BTreeMap<String, ModelClient>) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok();
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .ok();
    let (status, body) = match read_request(&mut stream) {
        Ok((method, path, body)) => route(&method, &path, &body, clients),
        Err(msg) => (400, error_json(&msg)),
    };
    geotorch_telemetry::count!("serve.http.requests", 1);
    write_response(&mut stream, status, &body);
}

fn route(
    method: &str,
    path: &str,
    body: &str,
    clients: &BTreeMap<String, ModelClient>,
) -> (u16, String) {
    match (method, path) {
        ("GET", "/healthz") => {
            let models = Value::Array(
                clients
                    .keys()
                    .map(|name| Value::String(name.clone()))
                    .collect(),
            );
            let payload = Value::Object(vec![
                ("status".to_string(), "ok".to_value()),
                ("models".to_string(), models),
            ]);
            (200, render(&payload))
        }
        ("GET", "/metrics") => (200, geotorch_telemetry::snapshot_json()),
        ("POST", _) if path.starts_with("/predict/") => {
            let name = &path["/predict/".len()..];
            match clients.get(name) {
                None => (404, error_json(&ServeError::ModelNotFound(name.to_string()).to_string())),
                Some(client) => match predict(client, name, body) {
                    Ok(json) => (200, json),
                    Err(ServeError::BadRequest(msg)) => (400, error_json(&msg)),
                    Err(e) => (500, error_json(&e.to_string())),
                },
            }
        }
        _ => (404, error_json(&format!("no route for {method} {path}"))),
    }
}

fn predict(client: &ModelClient, name: &str, body: &str) -> Result<String, ServeError> {
    let sample: Tensor = serde_json::from_str(body)
        .map_err(|e| ServeError::BadRequest(format!("tensor payload: {e}")))?;
    let output = client.predict(sample)?;
    let mut fields = vec![("model".to_string(), name.to_value())];
    match output.to_value() {
        Value::Object(tensor_fields) => fields.extend(tensor_fields),
        other => fields.push(("output".to_string(), other)),
    }
    Ok(render(&Value::Object(fields)))
}

fn render(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| error_json(&e.to_string()))
}

fn error_json(msg: &str) -> String {
    render(&Value::Object(vec![(
        "error".to_string(),
        msg.to_value(),
    )]))
}

/// Read one request: `(method, path, body)`.
fn read_request(stream: &mut TcpStream) -> Result<(String, String, String), String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 << 10 {
            return Err("headers too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(format!("malformed request line `{request_line}`"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            if key.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length `{}`", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds limit"));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    Ok((method, path, body))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes()).ok();
    stream.flush().ok();
}
