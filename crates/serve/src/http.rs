//! A hand-rolled HTTP/1.1 server over `std::net::TcpListener`.
//!
//! No external HTTP dependency: requests are parsed with a small
//! byte-scanner (request line, headers, `Content-Length` body), bodies
//! are JSON rendered through the vendored `serde_json`. A fixed pool of
//! worker threads shares the listener (each holds its own
//! `try_clone`d handle and blocks in `accept`); socket read/write
//! timeouts bound how long a slow or stalled client can occupy a worker,
//! so one bad peer cannot wedge an accept-loop thread.
//!
//! | Endpoint | Method | Body | Response |
//! |---|---|---|---|
//! | `/predict/<model>` | POST | `{"shape": [...], "data": [...]}` (one sample, no batch axis) | `{"model": ..., "shape": [...], "data": [...]}` |
//! | `/healthz` | GET | — | `{"status": "ok"\|"degraded"\|"draining", "models": [...], "model_status": {...}, "queue_depth": n}` |
//! | `/metrics` | GET | — | `geotorch-telemetry` snapshot (`serve.*` stats included) |
//!
//! Status codes: `200` success, `400` malformed request, `404` unknown
//! model/route, `408` client too slow, `413` body over the limit, `429`
//! shed by admission control (with `Retry-After`), `500` model failure,
//! `503` draining or dead worker, `504` deadline exceeded. A request may
//! carry `X-Deadline-Ms` to override the server's default deadline.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use geotorch_tensor::Tensor;
use serde::{Serialize, Value};

use crate::batcher::{BatchConfig, ModelClient, ModelWorker};
use crate::{Registry, ServeError};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Micro-batching and admission knobs shared by every served model.
    pub batch: BatchConfig,
    /// HTTP worker threads sharing the accept loop.
    pub http_workers: usize,
    /// Turn on `geotorch-telemetry` recording at startup so `/metrics`
    /// has data. Leave `false` to manage telemetry yourself.
    pub enable_telemetry: bool,
    /// Default per-request deadline in milliseconds, used when the
    /// client sends no `X-Deadline-Ms` header. `0` disables the default
    /// (requests then only time out if the client asks for one).
    pub default_deadline_ms: u64,
    /// Socket read/write timeout in milliseconds. A client that stalls
    /// mid-request is answered with 408 (when still writable) and
    /// disconnected, freeing the worker.
    pub socket_timeout_ms: u64,
    /// Largest accepted request body in bytes; larger bodies get 413.
    pub max_body: usize,
    /// Hard cap in milliseconds on the graceful drain: how long
    /// [`Server::shutdown`] waits for in-flight batches to flush before
    /// detaching a wedged model thread.
    pub drain_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch: BatchConfig::default(),
            http_workers: 4,
            enable_telemetry: true,
            default_deadline_ms: 30_000,
            socket_timeout_ms: 10_000,
            max_body: 64 << 20,
            drain_timeout_ms: 30_000,
        }
    }
}

/// A running inference server: model owner threads plus an HTTP front.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    front: Arc<FrontState>,
    http_joins: Vec<JoinHandle<()>>,
    workers: BTreeMap<String, ModelWorker>,
    drain_timeout: Duration,
}

/// Everything an HTTP worker needs, shared across the pool.
struct FrontState {
    clients: BTreeMap<String, ModelClient>,
    /// Set by [`Server::begin_drain`]: `/healthz` flips to `draining`
    /// (status 503) and predictions are refused, while the listener
    /// stays up so load balancers see the state change.
    draining: AtomicBool,
    /// Set by shutdown proper: accept loops exit.
    stop: Arc<AtomicBool>,
    default_deadline: Option<Duration>,
    socket_timeout: Duration,
    max_body: usize,
}

impl Server {
    /// Build every registered model (loading checkpoints, eval mode),
    /// bind `addr` (use port 0 for an ephemeral port), and start
    /// serving. Any model that fails to build or load aborts startup
    /// with the error.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Registry,
        config: ServeConfig,
    ) -> Result<Server, ServeError> {
        if config.enable_telemetry {
            geotorch_telemetry::set_enabled(true);
        }
        let workers = registry.spawn_all(config.batch)?;
        let clients: BTreeMap<String, ModelClient> = workers
            .iter()
            .map(|(name, w)| (name.clone(), w.client()))
            .collect();
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Internal(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Internal(format!("local_addr failed: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let front = Arc::new(FrontState {
            clients,
            draining: AtomicBool::new(false),
            stop: Arc::clone(&shutdown),
            default_deadline: match config.default_deadline_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            socket_timeout: Duration::from_millis(config.socket_timeout_ms.max(1)),
            max_body: config.max_body,
        });
        let mut http_joins = Vec::new();
        for i in 0..config.http_workers.max(1) {
            let listener = listener
                .try_clone()
                .map_err(|e| ServeError::Internal(format!("listener clone failed: {e}")))?;
            let front = Arc::clone(&front);
            let join = std::thread::Builder::new()
                .name(format!("serve-http-{i}"))
                .spawn(move || accept_loop(&listener, &front))
                .map_err(|e| ServeError::Internal(format!("spawn failed: {e}")))?;
            http_joins.push(join);
        }
        Ok(Server {
            addr,
            shutdown,
            front,
            http_joins,
            workers,
            drain_timeout: Duration::from_millis(config.drain_timeout_ms.max(1)),
        })
    }

    /// The bound address (resolves the actual port when started on 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Names of the models being served.
    pub fn models(&self) -> Vec<String> {
        self.workers.keys().cloned().collect()
    }

    /// Enter the draining state without stopping: `/healthz` reports
    /// `draining` with status 503 (so load balancers stop routing here)
    /// and new predictions are refused with 503, but connections are
    /// still accepted and in-flight work completes. Call
    /// [`Server::shutdown`] to finish.
    pub fn begin_drain(&self) {
        self.front.draining.store(true, Ordering::SeqCst);
    }

    /// Stop accepting connections, flush in-flight batches, join every
    /// thread — giving up on a wedged model thread after the configured
    /// drain hard timeout. Every admitted request is still answered.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.front.draining.store(true, Ordering::SeqCst);
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock every worker parked in accept() with one dummy
        // connection each; workers re-check the flag before handling.
        for _ in 0..self.http_joins.len() {
            TcpStream::connect(self.addr).ok();
        }
        for join in self.http_joins.drain(..) {
            join.join().ok();
        }
        // HTTP workers (and their ModelClient clones) are gone; drain
        // each model queue and join the owner threads, spending at most
        // the hard timeout across all of them.
        let deadline = Instant::now() + self.drain_timeout;
        for (_, worker) in std::mem::take(&mut self.workers) {
            let left = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            worker.shutdown_within(left);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, front: &Arc<FrontState>) {
    loop {
        if front.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if front.stop.load(Ordering::SeqCst) {
            // Racing a shutdown: answer 503 instead of silently
            // dropping a connection we already accepted. (The wake-up
            // dummy connections land here too and ignore the bytes.)
            write_response(
                &mut stream,
                503,
                &[],
                &error_json("server is shutting down"),
            );
            return;
        }
        handle_connection(stream, front);
    }
}

fn handle_connection(mut stream: TcpStream, front: &FrontState) {
    stream.set_read_timeout(Some(front.socket_timeout)).ok();
    stream.set_write_timeout(Some(front.socket_timeout)).ok();
    let (status, headers, body) = match read_request(&mut stream, front.max_body) {
        Ok(request) => route(&request, front),
        Err(ReadError::Disconnected) => {
            // The client is gone; nothing to write back, but the
            // worker survives and the event is visible in /metrics.
            geotorch_telemetry::count!("serve.error.disconnect", 1);
            geotorch_telemetry::count!("serve.http.requests", 1);
            return;
        }
        Err(ReadError::Respond(status, msg)) => (status, Vec::new(), error_json(&msg)),
    };
    geotorch_telemetry::count!("serve.http.requests", 1);
    count_error_status(status);
    write_response(&mut stream, status, &headers, &body);
}

/// Per-status error counters (`serve.error.*`), asserted by the
/// error-path test suite.
fn count_error_status(status: u16) {
    match status {
        400 => geotorch_telemetry::count!("serve.error.bad_request", 1),
        404 => geotorch_telemetry::count!("serve.error.not_found", 1),
        408 => geotorch_telemetry::count!("serve.error.slow_client", 1),
        413 => geotorch_telemetry::count!("serve.error.too_large", 1),
        429 => geotorch_telemetry::count!("serve.error.overloaded", 1),
        500 => geotorch_telemetry::count!("serve.error.internal", 1),
        503 => geotorch_telemetry::count!("serve.error.unavailable", 1),
        504 => geotorch_telemetry::count!("serve.error.deadline", 1),
        _ => {}
    }
}

struct HttpRequest {
    method: String,
    path: String,
    /// Parsed `X-Deadline-Ms` header, unvalidated.
    deadline_ms: Option<String>,
    body: String,
}

type Response = (u16, Vec<(&'static str, String)>, String);

fn respond(status: u16, body: String) -> Response {
    (status, Vec::new(), body)
}

fn status_for(err: &ServeError) -> u16 {
    match err {
        ServeError::ModelNotFound(_) => 404,
        ServeError::BadRequest(_) => 400,
        ServeError::PayloadTooLarge(_) => 413,
        ServeError::Overloaded(_) => 429,
        ServeError::DeadlineExceeded(_) => 504,
        ServeError::Unavailable(_) => 503,
        ServeError::ModelLoad(_) | ServeError::Internal(_) => 500,
    }
}

fn route(request: &HttpRequest, front: &FrontState) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(front),
        ("GET", "/metrics") => respond(200, geotorch_telemetry::snapshot_json()),
        ("POST", path) if path.starts_with("/predict/") => {
            let name = &path["/predict/".len()..];
            if front.draining.load(Ordering::SeqCst) {
                return respond(503, error_json("server is draining"));
            }
            match front.clients.get(name) {
                None => respond(
                    404,
                    error_json(&ServeError::ModelNotFound(name.to_string()).to_string()),
                ),
                Some(client) => match predict(client, name, request, front) {
                    Ok(json) => respond(200, json),
                    Err(e) => {
                        let status = status_for(&e);
                        let mut headers = Vec::new();
                        if status == 429 {
                            // A full queue drains within a batch window
                            // or two; tell clients when to come back.
                            headers.push(("Retry-After", "1".to_string()));
                        }
                        (status, headers, error_json(&e.to_string()))
                    }
                },
            }
        }
        (method, path) => respond(404, error_json(&format!("no route for {method} {path}"))),
    }
}

/// Aggregate health: `draining` once a drain began, `degraded` while any
/// model worker is dead or past its backpressure high watermark, `ok`
/// otherwise. Per-model readiness rides along so an operator can see
/// *which* model is the problem.
fn healthz(front: &FrontState) -> Response {
    let draining = front.draining.load(Ordering::SeqCst);
    let mut degraded = false;
    let mut model_status = Vec::new();
    let mut queue_depth = 0usize;
    for (name, client) in &front.clients {
        let state = if client.has_died() {
            degraded = true;
            "dead"
        } else if !client.is_alive() {
            degraded = true;
            "stopped"
        } else if client.is_pressured() {
            degraded = true;
            "pressured"
        } else {
            "ok"
        };
        queue_depth += client.queue_depth();
        model_status.push((name.clone(), state.to_value()));
    }
    let status = if draining {
        "draining"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    let models = Value::Array(
        front
            .clients
            .keys()
            .map(|name| Value::String(name.clone()))
            .collect(),
    );
    let payload = Value::Object(vec![
        ("status".to_string(), status.to_value()),
        ("models".to_string(), models),
        ("model_status".to_string(), Value::Object(model_status)),
        ("queue_depth".to_string(), (queue_depth as u64).to_value()),
    ]);
    // Load balancers treat non-2xx as "stop routing here" — exactly
    // what draining means. Degraded still serves.
    let http_status = if draining { 503 } else { 200 };
    (http_status, Vec::new(), render(&payload))
}

fn predict(
    client: &ModelClient,
    name: &str,
    request: &HttpRequest,
    front: &FrontState,
) -> Result<String, ServeError> {
    let deadline = match &request.deadline_ms {
        None => front.default_deadline,
        Some(raw) => {
            let ms: u64 = raw.trim().parse().map_err(|_| {
                ServeError::BadRequest(format!("X-Deadline-Ms: `{raw}` is not a number"))
            })?;
            Some(Duration::from_millis(ms))
        }
    };
    let sample: Tensor = serde_json::from_str(&request.body)
        .map_err(|e| ServeError::BadRequest(format!("tensor payload: {e}")))?;
    let output = client.predict_with_deadline(sample, deadline)?;
    let mut fields = vec![("model".to_string(), name.to_value())];
    match output.to_value() {
        Value::Object(tensor_fields) => fields.extend(tensor_fields),
        other => fields.push(("output".to_string(), other)),
    }
    Ok(render(&Value::Object(fields)))
}

fn render(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| error_json(&e.to_string()))
}

fn error_json(msg: &str) -> String {
    render(&Value::Object(vec![(
        "error".to_string(),
        msg.to_value(),
    )]))
}

/// Why a request could not be read.
enum ReadError {
    /// The client vanished mid-request; there is no one to answer.
    Disconnected,
    /// Answer with this status and message, then close.
    Respond(u16, String),
}

fn read_io_error(e: std::io::Error) -> ReadError {
    match e.kind() {
        // A read timeout surfaces as WouldBlock (unix) or TimedOut:
        // the client was too slow for the socket timeout.
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ReadError::Respond(408, "request timed out".to_string())
        }
        _ => ReadError::Disconnected,
    }
}

/// Read one request (chaos hook: `serve.http.read`).
fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, ReadError> {
    if let Err(msg) = geotorch_telemetry::fault_point!("serve.http.read") {
        return Err(ReadError::Respond(500, format!("injected read fault: {msg}")));
    }
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 << 10 {
            return Err(ReadError::Respond(400, "headers too large".to_string()));
        }
        let n = stream.read(&mut chunk).map_err(read_io_error)?;
        if n == 0 {
            return Err(ReadError::Disconnected);
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(ReadError::Respond(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    }
    let mut content_length = 0usize;
    let mut deadline_ms = None;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            let key = key.trim();
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    ReadError::Respond(400, format!("bad content-length `{}`", value.trim()))
                })?;
            } else if key.eq_ignore_ascii_case("x-deadline-ms") {
                deadline_ms = Some(value.trim().to_string());
            }
        }
    }
    if content_length > max_body {
        // Discard what the client already sent (bounded by 2x the limit)
        // so closing the socket with unread bytes doesn't RST the
        // connection before the 413 is delivered.
        let mut remaining = content_length
            .saturating_sub(buf.len() - (header_end + 4))
            .min(2 * max_body);
        while remaining > 0 {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => remaining = remaining.saturating_sub(n),
            }
        }
        return Err(ReadError::Respond(
            413,
            format!("body of {content_length} bytes exceeds the {max_body} byte limit"),
        ));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(read_io_error)?;
        if n == 0 {
            return Err(ReadError::Disconnected);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| ReadError::Respond(400, "body is not utf-8".to_string()))?;
    Ok(HttpRequest {
        method,
        path,
        deadline_ms,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&'static str, String)],
    body: &str,
) {
    if let Err(msg) = geotorch_telemetry::fault_point!("serve.http.write") {
        // Simulate a broken response path: close without writing.
        let _ = msg;
        return;
    }
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let mut headers = String::new();
    for (key, value) in extra_headers {
        headers.push_str(&format!("{key}: {value}\r\n"));
    }
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n{headers}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes()).ok();
    stream.flush().ok();
}
