//! A hand-rolled HTTP/1.1 layer over `std::net`.
//!
//! No external HTTP dependency: requests are parsed with a small
//! incremental byte-scanner ([`try_parse`]: request line → headers →
//! `Content-Length` body) that works the same whether it is fed by the
//! event-driven epoll front (non-blocking sockets, partial buffers) or
//! the portable blocking fallback. The parsed request keeps the raw
//! receive buffer and hands the body out as a slice — no copy between
//! socket and JSON decoder. HTTP/1.1 keep-alive is honored (including
//! pipelined requests already sitting in the buffer); `Connection:
//! close` and HTTP/1.0 defaults behave per spec.
//!
//! | Endpoint | Method | Body | Response |
//! |---|---|---|---|
//! | `/predict/<model>` | POST | `{"shape": [...], "data": [...]}` (one sample, no batch axis) | `{"model": ..., "shape": [...], "data": [...]}` + `X-Model-Version` header |
//! | `/healthz` | GET | — | `{"status": "ok"\|"degraded"\|"draining", "models": [...], "model_status": {...}, "queue_depth": n}` |
//! | `/metrics` | GET | — | `geotorch-telemetry` snapshot (`serve.*` stats included) |
//! | `/models/<m>/manifest` | GET | — | head [`Manifest`](geotorch_core::Manifest) JSON (sync-enabled models) |
//! | `/models/<m>/tensors/<idx>@<ver>-<hash>` | GET | — | one stored tensor payload, verbatim |
//! | `/models/<m>/publish` | POST | classic checkpoint JSON (full state dict) | `{"model", "id", "changed", "delta_bytes"}`; hot-swaps replicas |
//! | `/models/<m>/sync` | POST | `{"peer": "host:port"}` | `{"model", "id", "changed", "fetched", "fetched_bytes", "advanced"}`; hot-swaps if advanced |
//!
//! Status codes: `200` success, `400` malformed request, `404` unknown
//! model/route, `408` client too slow, `413` body over the limit, `429`
//! shed by admission control (with `Retry-After`), `500` model failure,
//! `503` draining or dead worker, `504` deadline exceeded. A request may
//! carry `X-Deadline-Ms` to override the server's default deadline.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use geotorch_core::checkpoint::CheckpointError;
use geotorch_core::{DeltaStore, IntegrateReport, PublishReport, TensorVersion};
use geotorch_tensor::Tensor;
use serde::{Serialize, Value};

use crate::batcher::{BatchConfig, ModelClient, ModelWorker};
use crate::front::Front;
use crate::sync::{sync_store, SyncClient};
use crate::{Registry, ServeError};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Micro-batching and admission knobs shared by every served model.
    pub batch: BatchConfig,
    /// Responder threads behind the event loop: they run routing, the
    /// (blocking) model call, and the response write for complete
    /// requests. Slow clients never occupy one.
    pub http_workers: usize,
    /// Turn on `geotorch-telemetry` recording at startup so `/metrics`
    /// has data. Leave `false` to manage telemetry yourself.
    pub enable_telemetry: bool,
    /// Default per-request deadline in milliseconds, used when the
    /// client sends no `X-Deadline-Ms` header. `0` disables the default
    /// (requests then only time out if the client asks for one).
    pub default_deadline_ms: u64,
    /// Per-connection idle/read budget in milliseconds, enforced by the
    /// event loop's timer sweep. A client that stalls mid-request is
    /// answered with 408 and disconnected; an idle keep-alive
    /// connection is closed silently.
    pub socket_timeout_ms: u64,
    /// Largest accepted request body in bytes; larger bodies get 413.
    pub max_body: usize,
    /// Hard cap in milliseconds on the graceful drain: how long
    /// [`Server::shutdown`] waits for in-flight batches to flush before
    /// detaching a wedged model thread.
    pub drain_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch: BatchConfig::default(),
            http_workers: 4,
            enable_telemetry: true,
            default_deadline_ms: 30_000,
            socket_timeout_ms: 10_000,
            max_body: 64 << 20,
            drain_timeout_ms: 30_000,
        }
    }
}

/// A running inference server: model replica threads plus the
/// event-driven HTTP front.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    front: Arc<FrontState>,
    front_handle: Option<Front>,
    workers: BTreeMap<String, ModelWorker>,
    drain_timeout: Duration,
}

/// Everything the front (event loop + responders) needs, shared.
pub(crate) struct FrontState {
    pub(crate) clients: BTreeMap<String, ModelClient>,
    /// Delta stores of sync-enabled models (see
    /// [`Registry::enable_sync`]): backing state for the
    /// `/models/<name>/...` registry routes and in-process
    /// publish/sync.
    pub(crate) stores: BTreeMap<String, Arc<Mutex<DeltaStore>>>,
    /// Set by [`Server::begin_drain`]: `/healthz` flips to `draining`
    /// (status 503) and predictions are refused, while the listener
    /// stays up so load balancers see the state change.
    pub(crate) draining: AtomicBool,
    /// Set by shutdown proper: the event loop and responders exit.
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) default_deadline: Option<Duration>,
    pub(crate) socket_timeout: Duration,
    pub(crate) max_body: usize,
}

impl Server {
    /// Build every registered model (loading checkpoints, eval mode),
    /// bind `addr` (use port 0 for an ephemeral port), and start
    /// serving. Any model that fails to build or load aborts startup
    /// with the error.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Registry,
        config: ServeConfig,
    ) -> Result<Server, ServeError> {
        if config.enable_telemetry {
            geotorch_telemetry::set_enabled(true);
        }
        let (workers, stores) = registry.spawn_all_with_stores(config.batch)?;
        let clients: BTreeMap<String, ModelClient> = workers
            .iter()
            .map(|(name, w)| (name.clone(), w.client()))
            .collect();
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Internal(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Internal(format!("local_addr failed: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let front = Arc::new(FrontState {
            clients,
            stores,
            draining: AtomicBool::new(false),
            stop: Arc::clone(&shutdown),
            default_deadline: match config.default_deadline_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            socket_timeout: Duration::from_millis(config.socket_timeout_ms.max(1)),
            max_body: config.max_body,
        });
        let front_handle = Front::start(listener, Arc::clone(&front), config.http_workers)?;
        Ok(Server {
            addr,
            shutdown,
            front,
            front_handle: Some(front_handle),
            workers,
            drain_timeout: Duration::from_millis(config.drain_timeout_ms.max(1)),
        })
    }

    /// The bound address (resolves the actual port when started on 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Names of the models being served.
    pub fn models(&self) -> Vec<String> {
        self.workers.keys().cloned().collect()
    }

    /// An in-process submission handle to a served model's batcher —
    /// the embedded path for drivers (e.g. tiled inference) that live in
    /// the same process as the server and should share its admission
    /// control, replicas, and deadlines without the HTTP hop.
    pub fn client(&self, model: &str) -> Option<ModelClient> {
        self.workers.get(model).map(|w| w.client())
    }

    /// Publish a full state dict for a sync-enabled model: diff it
    /// against the store head (writing only changed tensor payloads),
    /// then hot-swap every serving replica to the new weights between
    /// batches. In-flight requests complete on the old weights; no
    /// request is dropped. The same operation is reachable over HTTP as
    /// `POST /models/<name>/publish` with a classic checkpoint body.
    pub fn publish(&self, model: &str, state: &[Tensor]) -> Result<PublishReport, ServeError> {
        publish_state(&self.front, model, state)
    }

    /// Pull `model`'s head from a peer node (`host:port`) and, if the
    /// local head advanced, hot-swap the serving replicas to it. The
    /// same operation is reachable over HTTP as
    /// `POST /models/<name>/sync` with body `{"peer": "host:port"}`.
    /// On any failure the old weights keep serving and a retry
    /// converges once the fault clears.
    pub fn sync_from(&self, model: &str, peer: &str) -> Result<IntegrateReport, ServeError> {
        sync_from_peer(&self.front, model, peer)
    }

    /// The head manifest id of a sync-enabled model's store — the label
    /// replies carry until the next publish/sync.
    pub fn head_id(&self, model: &str) -> Option<String> {
        let store = self.front.stores.get(model)?;
        let store = store.lock().unwrap_or_else(|e| e.into_inner());
        store.head().map(|h| h.id.clone())
    }

    /// Run coordination-free GC on a sync-enabled model's store,
    /// deleting payloads strictly dominated by the head. Returns the
    /// number of payload files removed.
    pub fn gc(&self, model: &str) -> Result<u64, ServeError> {
        let store = self
            .front
            .stores
            .get(model)
            .ok_or_else(|| ServeError::ModelNotFound(model.to_string()))?;
        let mut store = store.lock().unwrap_or_else(|e| e.into_inner());
        store
            .gc()
            .map_err(|e| ServeError::Internal(format!("gc: {e}")))
    }

    /// Enter the draining state without stopping: `/healthz` reports
    /// `draining` with status 503 (so load balancers stop routing here)
    /// and new predictions are refused with 503, but connections are
    /// still accepted and in-flight work completes. Call
    /// [`Server::shutdown`] to finish.
    pub fn begin_drain(&self) {
        self.front.draining.store(true, Ordering::SeqCst);
    }

    /// Stop accepting connections, answer every request already read,
    /// flush in-flight batches, join every thread — giving up on a
    /// wedged model thread after the configured drain hard timeout.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.front.draining.store(true, Ordering::SeqCst);
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The front first: the event loop exits (503-ing half-read
        // requests), then the responders finish everything already
        // queued — the model workers are still alive for them.
        if let Some(mut front) = self.front_handle.take() {
            front.stop();
        }
        // Now drain each model queue and join the replica threads,
        // spending at most the hard timeout across all of them.
        let deadline = Instant::now() + self.drain_timeout;
        for (_, worker) in std::mem::take(&mut self.workers) {
            let left = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            worker.shutdown_within(left);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-status error counters (`serve.error.*`), asserted by the
/// error-path test suite.
pub(crate) fn count_error_status(status: u16) {
    match status {
        400 => geotorch_telemetry::count!("serve.error.bad_request", 1),
        404 => geotorch_telemetry::count!("serve.error.not_found", 1),
        408 => geotorch_telemetry::count!("serve.error.slow_client", 1),
        413 => geotorch_telemetry::count!("serve.error.too_large", 1),
        429 => geotorch_telemetry::count!("serve.error.overloaded", 1),
        500 => geotorch_telemetry::count!("serve.error.internal", 1),
        503 => geotorch_telemetry::count!("serve.error.unavailable", 1),
        504 => geotorch_telemetry::count!("serve.error.deadline", 1),
        _ => {}
    }
}

/// One parsed request. Owns its raw receive buffer; the body is the
/// tail slice starting at `body_start` — handed to the JSON decoder
/// without a copy.
pub(crate) struct HttpRequest {
    pub(crate) method: String,
    pub(crate) path: String,
    /// Parsed `X-Deadline-Ms` header, unvalidated.
    pub(crate) deadline_ms: Option<String>,
    /// Whether the connection may serve another request after this one
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection`
    /// header wins either way).
    pub(crate) keep_alive: bool,
    raw: Vec<u8>,
    body_start: usize,
}

impl HttpRequest {
    /// The request body (utf-8, validated at parse time).
    pub(crate) fn body(&self) -> &str {
        std::str::from_utf8(&self.raw[self.body_start..]).unwrap_or_default()
    }
}

/// Outcome of feeding buffered bytes to the incremental parser.
pub(crate) enum Parsed {
    /// Not a full request yet; keep the buffer and read more.
    NeedMore,
    /// One complete request, plus any pipelined bytes that followed it
    /// (the start of the next request on a keep-alive connection).
    Complete(Box<HttpRequest>, Vec<u8>),
    /// Unparseable: answer with this status and message, then close.
    Invalid(u16, String),
    /// `Content-Length` over the limit. The caller should discard up to
    /// `discard` more bytes (so the close doesn't RST the unread data
    /// off the wire) and then answer 413.
    TooLarge {
        content_length: usize,
        discard: usize,
    },
}

/// Try to parse one request out of `buf`. On [`Parsed::Complete`] the
/// buffer is consumed (moved into the request); on every other outcome
/// it is left for the caller — untouched except [`Parsed::TooLarge`],
/// which clears it.
pub(crate) fn try_parse(buf: &mut Vec<u8>, max_body: usize) -> Parsed {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > 64 << 10 {
            return Parsed::Invalid(400, "headers too large".to_string());
        }
        return Parsed::NeedMore;
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Parsed::Invalid(400, format!("malformed request line `{request_line}`"));
    }
    let mut content_length = 0usize;
    let mut deadline_ms = None;
    let mut connection: Option<String> = None;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            let key = key.trim();
            if key.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Parsed::Invalid(
                            400,
                            format!("bad content-length `{}`", value.trim()),
                        );
                    }
                };
            } else if key.eq_ignore_ascii_case("x-deadline-ms") {
                deadline_ms = Some(value.trim().to_string());
            } else if key.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            }
        }
    }
    let body_start = header_end + 4;
    if content_length > max_body {
        // How much of the oversized body is still in flight, bounded by
        // 2x the limit so a hostile Content-Length can't make us read
        // forever.
        let discard = content_length
            .saturating_sub(buf.len().saturating_sub(body_start))
            .min(2 * max_body);
        buf.clear();
        return Parsed::TooLarge {
            content_length,
            discard,
        };
    }
    let total = body_start + content_length;
    if buf.len() < total {
        return Parsed::NeedMore;
    }
    let keep_alive = if version.eq_ignore_ascii_case("HTTP/1.0") {
        connection.as_deref() == Some("keep-alive")
    } else {
        connection.as_deref() != Some("close")
    };
    let leftover = buf.split_off(total);
    let raw = std::mem::take(buf);
    if std::str::from_utf8(&raw[body_start..]).is_err() {
        return Parsed::Invalid(400, "body is not utf-8".to_string());
    }
    Parsed::Complete(
        Box::new(HttpRequest {
            method,
            path,
            deadline_ms,
            keep_alive,
            raw,
            body_start,
        }),
        leftover,
    )
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

pub(crate) type Response = (u16, Vec<(&'static str, String)>, String);

fn respond(status: u16, body: String) -> Response {
    (status, Vec::new(), body)
}

fn status_for(err: &ServeError) -> u16 {
    match err {
        ServeError::ModelNotFound(_) => 404,
        ServeError::BadRequest(_) => 400,
        ServeError::PayloadTooLarge(_) => 413,
        ServeError::Overloaded(_) => 429,
        ServeError::DeadlineExceeded(_) => 504,
        ServeError::Unavailable(_) => 503,
        ServeError::ModelLoad(_) | ServeError::Internal(_) => 500,
    }
}

pub(crate) fn route(request: &HttpRequest, front: &FrontState) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(front),
        ("GET", "/metrics") => respond(200, geotorch_telemetry::snapshot_json()),
        ("POST", path) if path.starts_with("/predict/") => {
            let name = &path["/predict/".len()..];
            if front.draining.load(Ordering::SeqCst) {
                return respond(503, error_json("server is draining"));
            }
            match front.clients.get(name) {
                None => respond(
                    404,
                    error_json(&ServeError::ModelNotFound(name.to_string()).to_string()),
                ),
                Some(client) => match predict(client, name, request, front) {
                    Ok((json, version)) => {
                        (200, vec![("X-Model-Version", version)], json)
                    }
                    Err(e) => {
                        let status = status_for(&e);
                        let mut headers = Vec::new();
                        if status == 429 {
                            // A full queue drains within a batch window
                            // or two; tell clients when to come back.
                            headers.push(("Retry-After", "1".to_string()));
                        }
                        (status, headers, error_json(&e.to_string()))
                    }
                },
            }
        }
        ("GET", path) if path.starts_with("/models/") => {
            registry_get(&path["/models/".len()..], front)
        }
        ("POST", path) if path.starts_with("/models/") => {
            registry_post(&path["/models/".len()..], request, front)
        }
        (method, path) => respond(404, error_json(&format!("no route for {method} {path}"))),
    }
}

/// `GET /models/<name>/manifest` and
/// `GET /models/<name>/tensors/<idx>@<ver>-<hash>`: the read half of
/// the sync wire protocol — what a peer's [`SyncClient`] calls.
fn registry_get(rest: &str, front: &FrontState) -> Response {
    let Some((name, tail)) = rest.split_once('/') else {
        return respond(404, error_json(&format!("no route for /models/{rest}")));
    };
    let Some(store) = front.stores.get(name) else {
        return respond(404, error_json(&format!("model `{name}` has no delta store")));
    };
    let store = store.lock().unwrap_or_else(|e| e.into_inner());
    if tail == "manifest" {
        return match store.head() {
            Some(head) => respond(200, head.to_json()),
            None => respond(404, error_json(&format!("model `{name}` has no published head"))),
        };
    }
    if let Some(spec) = tail.strip_prefix("tensors/") {
        let Some((idx, entry)) = parse_tensor_spec(spec) else {
            return respond(
                400,
                error_json(&format!("bad tensor spec `{spec}` (want <idx>@<ver>-<hash>)")),
            );
        };
        return match store.payload_bytes(idx, &entry) {
            Ok(bytes) => respond(200, String::from_utf8_lossy(&bytes).into_owned()),
            Err(_) => respond(
                404,
                error_json(&format!("no payload {idx}@{}-{}", entry.ver, entry.hash)),
            ),
        };
    }
    respond(404, error_json(&format!("no route for /models/{name}/{tail}")))
}

/// `POST /models/<name>/publish` (body: a classic checkpoint — bare
/// array or named header — holding the *full* state dict) and
/// `POST /models/<name>/sync` (body: `{"peer": "host:port"}`).
fn registry_post(rest: &str, request: &HttpRequest, front: &FrontState) -> Response {
    let Some((name, tail)) = rest.split_once('/') else {
        return respond(404, error_json(&format!("no route for /models/{rest}")));
    };
    if front.draining.load(Ordering::SeqCst) {
        return respond(503, error_json("server is draining"));
    }
    let result = match tail {
        "publish" => publish_body(front, name, request.body()),
        "sync" => sync_body(front, name, request.body()),
        _ => {
            return respond(404, error_json(&format!("no route for /models/{name}/{tail}")));
        }
    };
    match result {
        Ok(json) => respond(200, json),
        Err(e) => respond(status_for(&e), error_json(&e.to_string())),
    }
}

fn parse_tensor_spec(spec: &str) -> Option<(usize, TensorVersion)> {
    let (idx, rest) = spec.split_once('@')?;
    let (ver, hash) = rest.split_once('-')?;
    Some((
        idx.parse().ok()?,
        TensorVersion {
            ver: ver.parse().ok()?,
            hash: hash.to_string(),
        },
    ))
}

fn publish_body(front: &FrontState, name: &str, body: &str) -> Result<String, ServeError> {
    let (meta, state) = geotorch_core::checkpoint::parse_bytes(body)
        .map_err(|e| ServeError::BadRequest(format!("checkpoint body: {e}")))?;
    if let Some(saved) = &meta.model {
        if saved != name {
            return Err(ServeError::BadRequest(format!(
                "checkpoint is for model `{saved}`, published to `{name}`"
            )));
        }
    }
    let report = publish_state(front, name, &state)?;
    Ok(render(&Value::Object(vec![
        ("model".to_string(), name.to_value()),
        ("id".to_string(), report.id.to_value()),
        ("changed".to_string(), report.changed.to_value()),
        ("delta_bytes".to_string(), report.delta_bytes.to_value()),
    ])))
}

fn sync_body(front: &FrontState, name: &str, body: &str) -> Result<String, ServeError> {
    let value: Value = serde_json::from_str(body)
        .map_err(|e| ServeError::BadRequest(format!("sync body: {e}")))?;
    let peer = value
        .get("peer")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::BadRequest("sync body needs `peer`".to_string()))?;
    let report = sync_from_peer(front, name, peer)?;
    Ok(render(&Value::Object(vec![
        ("model".to_string(), name.to_value()),
        ("id".to_string(), report.id.to_value()),
        ("changed".to_string(), report.changed.to_value()),
        ("fetched".to_string(), report.fetched.to_value()),
        ("fetched_bytes".to_string(), report.fetched_bytes.to_value()),
        ("advanced".to_string(), Value::Bool(report.advanced)),
    ])))
}

/// Shared by the HTTP route and [`Server::publish`]: diff-publish into
/// the store, then stage the hot-swap. Publishing identical content is
/// a no-op (no swap churn).
pub(crate) fn publish_state(
    front: &FrontState,
    model: &str,
    state: &[Tensor],
) -> Result<PublishReport, ServeError> {
    let store = front
        .stores
        .get(model)
        .ok_or_else(|| ServeError::ModelNotFound(format!("{model} (no delta store)")))?;
    let client = front
        .clients
        .get(model)
        .ok_or_else(|| ServeError::ModelNotFound(model.to_string()))?;
    let mut store = store.lock().unwrap_or_else(|e| e.into_inner());
    let report = store.publish(state).map_err(|e| match e {
        CheckpointError::Io(e) => ServeError::Internal(format!("publish: {e}")),
        other => ServeError::BadRequest(format!("publish: {other}")),
    })?;
    if !report.changed.is_empty() {
        client.install_weights(&report.id, state.to_vec())?;
    }
    Ok(report)
}

/// Shared by the HTTP route and [`Server::sync_from`]: pull the peer's
/// head, and hot-swap only when the local head advanced. The store
/// lock is held across the pull, serialising publishes and syncs for
/// one model (predictions never take it).
pub(crate) fn sync_from_peer(
    front: &FrontState,
    model: &str,
    peer: &str,
) -> Result<IntegrateReport, ServeError> {
    let store = front
        .stores
        .get(model)
        .ok_or_else(|| ServeError::ModelNotFound(format!("{model} (no delta store)")))?;
    let client = front
        .clients
        .get(model)
        .ok_or_else(|| ServeError::ModelNotFound(model.to_string()))?;
    let peer = SyncClient::new(peer);
    let mut store = store.lock().unwrap_or_else(|e| e.into_inner());
    let report = sync_store(&mut store, &peer, model)?;
    if report.advanced {
        let state = store
            .materialize()
            .map_err(|e| ServeError::Internal(format!("materialize: {e}")))?;
        client.install_weights(&report.id, state)?;
    }
    Ok(report)
}

/// Aggregate health: `draining` once a drain began, `degraded` while any
/// model worker is dead or past its backpressure high watermark, `ok`
/// otherwise. Per-model readiness rides along so an operator can see
/// *which* model is the problem.
fn healthz(front: &FrontState) -> Response {
    let draining = front.draining.load(Ordering::SeqCst);
    let mut degraded = false;
    let mut model_status = Vec::new();
    let mut queue_depth = 0usize;
    for (name, client) in &front.clients {
        let state = if client.has_died() {
            degraded = true;
            "dead"
        } else if !client.is_alive() {
            degraded = true;
            "stopped"
        } else if client.is_pressured() {
            degraded = true;
            "pressured"
        } else {
            "ok"
        };
        queue_depth += client.queue_depth();
        model_status.push((name.clone(), state.to_value()));
    }
    let status = if draining {
        "draining"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    let models = Value::Array(
        front
            .clients
            .keys()
            .map(|name| Value::String(name.clone()))
            .collect(),
    );
    let payload = Value::Object(vec![
        ("status".to_string(), status.to_value()),
        ("models".to_string(), models),
        ("model_status".to_string(), Value::Object(model_status)),
        ("queue_depth".to_string(), (queue_depth as u64).to_value()),
    ]);
    // Load balancers treat non-2xx as "stop routing here" — exactly
    // what draining means. Degraded still serves.
    let http_status = if draining { 503 } else { 200 };
    (http_status, Vec::new(), render(&payload))
}

fn predict(
    client: &ModelClient,
    name: &str,
    request: &HttpRequest,
    front: &FrontState,
) -> Result<(String, String), ServeError> {
    let deadline = match &request.deadline_ms {
        None => front.default_deadline,
        Some(raw) => {
            let ms: u64 = raw.trim().parse().map_err(|_| {
                ServeError::BadRequest(format!("X-Deadline-Ms: `{raw}` is not a number"))
            })?;
            Some(Duration::from_millis(ms))
        }
    };
    let sample: Tensor = serde_json::from_str(request.body())
        .map_err(|e| ServeError::BadRequest(format!("tensor payload: {e}")))?;
    let (output, version) = client.predict_versioned(sample, deadline)?;
    let mut fields = vec![("model".to_string(), name.to_value())];
    match output.to_value() {
        Value::Object(tensor_fields) => fields.extend(tensor_fields),
        other => fields.push(("output".to_string(), other)),
    }
    Ok((render(&Value::Object(fields)), version.to_string()))
}

fn render(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| error_json(&e.to_string()))
}

pub(crate) fn error_json(msg: &str) -> String {
    render(&Value::Object(vec![(
        "error".to_string(),
        msg.to_value(),
    )]))
}

/// Write one response (chaos hook: `serve.http.write` — an injected
/// fault closes the connection without writing). Returns whether the
/// full response went out; the caller closes the connection when it
/// didn't, or when `keep_alive` is false.
pub(crate) fn send_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&'static str, String)],
    body: &str,
    keep_alive: bool,
) -> bool {
    if let Err(msg) = geotorch_telemetry::fault_point!("serve.http.write") {
        // Simulate a broken response path: close without writing.
        let _ = msg;
        return false;
    }
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let mut headers = String::new();
    for (key, value) in extra_headers {
        headers.push_str(&format!("{key}: {value}\r\n"));
    }
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n{headers}Content-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    );
    let ok = stream.write_all(response.as_bytes()).is_ok();
    stream.flush().ok();
    ok
}
