//! A hand-rolled HTTP/1.1 layer over `std::net`.
//!
//! No external HTTP dependency: requests are parsed with a small
//! incremental byte-scanner ([`try_parse`]: request line → headers →
//! `Content-Length` body) that works the same whether it is fed by the
//! event-driven epoll front (non-blocking sockets, partial buffers) or
//! the portable blocking fallback. The parsed request keeps the raw
//! receive buffer and hands the body out as a slice — no copy between
//! socket and JSON decoder. HTTP/1.1 keep-alive is honored (including
//! pipelined requests already sitting in the buffer); `Connection:
//! close` and HTTP/1.0 defaults behave per spec.
//!
//! | Endpoint | Method | Body | Response |
//! |---|---|---|---|
//! | `/predict/<model>` | POST | `{"shape": [...], "data": [...]}` (one sample, no batch axis) | `{"model": ..., "shape": [...], "data": [...]}` |
//! | `/healthz` | GET | — | `{"status": "ok"\|"degraded"\|"draining", "models": [...], "model_status": {...}, "queue_depth": n}` |
//! | `/metrics` | GET | — | `geotorch-telemetry` snapshot (`serve.*` stats included) |
//!
//! Status codes: `200` success, `400` malformed request, `404` unknown
//! model/route, `408` client too slow, `413` body over the limit, `429`
//! shed by admission control (with `Retry-After`), `500` model failure,
//! `503` draining or dead worker, `504` deadline exceeded. A request may
//! carry `X-Deadline-Ms` to override the server's default deadline.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use geotorch_tensor::Tensor;
use serde::{Serialize, Value};

use crate::batcher::{BatchConfig, ModelClient, ModelWorker};
use crate::front::Front;
use crate::{Registry, ServeError};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Micro-batching and admission knobs shared by every served model.
    pub batch: BatchConfig,
    /// Responder threads behind the event loop: they run routing, the
    /// (blocking) model call, and the response write for complete
    /// requests. Slow clients never occupy one.
    pub http_workers: usize,
    /// Turn on `geotorch-telemetry` recording at startup so `/metrics`
    /// has data. Leave `false` to manage telemetry yourself.
    pub enable_telemetry: bool,
    /// Default per-request deadline in milliseconds, used when the
    /// client sends no `X-Deadline-Ms` header. `0` disables the default
    /// (requests then only time out if the client asks for one).
    pub default_deadline_ms: u64,
    /// Per-connection idle/read budget in milliseconds, enforced by the
    /// event loop's timer sweep. A client that stalls mid-request is
    /// answered with 408 and disconnected; an idle keep-alive
    /// connection is closed silently.
    pub socket_timeout_ms: u64,
    /// Largest accepted request body in bytes; larger bodies get 413.
    pub max_body: usize,
    /// Hard cap in milliseconds on the graceful drain: how long
    /// [`Server::shutdown`] waits for in-flight batches to flush before
    /// detaching a wedged model thread.
    pub drain_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch: BatchConfig::default(),
            http_workers: 4,
            enable_telemetry: true,
            default_deadline_ms: 30_000,
            socket_timeout_ms: 10_000,
            max_body: 64 << 20,
            drain_timeout_ms: 30_000,
        }
    }
}

/// A running inference server: model replica threads plus the
/// event-driven HTTP front.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    front: Arc<FrontState>,
    front_handle: Option<Front>,
    workers: BTreeMap<String, ModelWorker>,
    drain_timeout: Duration,
}

/// Everything the front (event loop + responders) needs, shared.
pub(crate) struct FrontState {
    pub(crate) clients: BTreeMap<String, ModelClient>,
    /// Set by [`Server::begin_drain`]: `/healthz` flips to `draining`
    /// (status 503) and predictions are refused, while the listener
    /// stays up so load balancers see the state change.
    pub(crate) draining: AtomicBool,
    /// Set by shutdown proper: the event loop and responders exit.
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) default_deadline: Option<Duration>,
    pub(crate) socket_timeout: Duration,
    pub(crate) max_body: usize,
}

impl Server {
    /// Build every registered model (loading checkpoints, eval mode),
    /// bind `addr` (use port 0 for an ephemeral port), and start
    /// serving. Any model that fails to build or load aborts startup
    /// with the error.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Registry,
        config: ServeConfig,
    ) -> Result<Server, ServeError> {
        if config.enable_telemetry {
            geotorch_telemetry::set_enabled(true);
        }
        let workers = registry.spawn_all(config.batch)?;
        let clients: BTreeMap<String, ModelClient> = workers
            .iter()
            .map(|(name, w)| (name.clone(), w.client()))
            .collect();
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Internal(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Internal(format!("local_addr failed: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let front = Arc::new(FrontState {
            clients,
            draining: AtomicBool::new(false),
            stop: Arc::clone(&shutdown),
            default_deadline: match config.default_deadline_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            socket_timeout: Duration::from_millis(config.socket_timeout_ms.max(1)),
            max_body: config.max_body,
        });
        let front_handle = Front::start(listener, Arc::clone(&front), config.http_workers)?;
        Ok(Server {
            addr,
            shutdown,
            front,
            front_handle: Some(front_handle),
            workers,
            drain_timeout: Duration::from_millis(config.drain_timeout_ms.max(1)),
        })
    }

    /// The bound address (resolves the actual port when started on 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Names of the models being served.
    pub fn models(&self) -> Vec<String> {
        self.workers.keys().cloned().collect()
    }

    /// An in-process submission handle to a served model's batcher —
    /// the embedded path for drivers (e.g. tiled inference) that live in
    /// the same process as the server and should share its admission
    /// control, replicas, and deadlines without the HTTP hop.
    pub fn client(&self, model: &str) -> Option<ModelClient> {
        self.workers.get(model).map(|w| w.client())
    }

    /// Enter the draining state without stopping: `/healthz` reports
    /// `draining` with status 503 (so load balancers stop routing here)
    /// and new predictions are refused with 503, but connections are
    /// still accepted and in-flight work completes. Call
    /// [`Server::shutdown`] to finish.
    pub fn begin_drain(&self) {
        self.front.draining.store(true, Ordering::SeqCst);
    }

    /// Stop accepting connections, answer every request already read,
    /// flush in-flight batches, join every thread — giving up on a
    /// wedged model thread after the configured drain hard timeout.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.front.draining.store(true, Ordering::SeqCst);
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The front first: the event loop exits (503-ing half-read
        // requests), then the responders finish everything already
        // queued — the model workers are still alive for them.
        if let Some(mut front) = self.front_handle.take() {
            front.stop();
        }
        // Now drain each model queue and join the replica threads,
        // spending at most the hard timeout across all of them.
        let deadline = Instant::now() + self.drain_timeout;
        for (_, worker) in std::mem::take(&mut self.workers) {
            let left = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            worker.shutdown_within(left);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-status error counters (`serve.error.*`), asserted by the
/// error-path test suite.
pub(crate) fn count_error_status(status: u16) {
    match status {
        400 => geotorch_telemetry::count!("serve.error.bad_request", 1),
        404 => geotorch_telemetry::count!("serve.error.not_found", 1),
        408 => geotorch_telemetry::count!("serve.error.slow_client", 1),
        413 => geotorch_telemetry::count!("serve.error.too_large", 1),
        429 => geotorch_telemetry::count!("serve.error.overloaded", 1),
        500 => geotorch_telemetry::count!("serve.error.internal", 1),
        503 => geotorch_telemetry::count!("serve.error.unavailable", 1),
        504 => geotorch_telemetry::count!("serve.error.deadline", 1),
        _ => {}
    }
}

/// One parsed request. Owns its raw receive buffer; the body is the
/// tail slice starting at `body_start` — handed to the JSON decoder
/// without a copy.
pub(crate) struct HttpRequest {
    pub(crate) method: String,
    pub(crate) path: String,
    /// Parsed `X-Deadline-Ms` header, unvalidated.
    pub(crate) deadline_ms: Option<String>,
    /// Whether the connection may serve another request after this one
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection`
    /// header wins either way).
    pub(crate) keep_alive: bool,
    raw: Vec<u8>,
    body_start: usize,
}

impl HttpRequest {
    /// The request body (utf-8, validated at parse time).
    pub(crate) fn body(&self) -> &str {
        std::str::from_utf8(&self.raw[self.body_start..]).unwrap_or_default()
    }
}

/// Outcome of feeding buffered bytes to the incremental parser.
pub(crate) enum Parsed {
    /// Not a full request yet; keep the buffer and read more.
    NeedMore,
    /// One complete request, plus any pipelined bytes that followed it
    /// (the start of the next request on a keep-alive connection).
    Complete(Box<HttpRequest>, Vec<u8>),
    /// Unparseable: answer with this status and message, then close.
    Invalid(u16, String),
    /// `Content-Length` over the limit. The caller should discard up to
    /// `discard` more bytes (so the close doesn't RST the unread data
    /// off the wire) and then answer 413.
    TooLarge {
        content_length: usize,
        discard: usize,
    },
}

/// Try to parse one request out of `buf`. On [`Parsed::Complete`] the
/// buffer is consumed (moved into the request); on every other outcome
/// it is left for the caller — untouched except [`Parsed::TooLarge`],
/// which clears it.
pub(crate) fn try_parse(buf: &mut Vec<u8>, max_body: usize) -> Parsed {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > 64 << 10 {
            return Parsed::Invalid(400, "headers too large".to_string());
        }
        return Parsed::NeedMore;
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Parsed::Invalid(400, format!("malformed request line `{request_line}`"));
    }
    let mut content_length = 0usize;
    let mut deadline_ms = None;
    let mut connection: Option<String> = None;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            let key = key.trim();
            if key.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Parsed::Invalid(
                            400,
                            format!("bad content-length `{}`", value.trim()),
                        );
                    }
                };
            } else if key.eq_ignore_ascii_case("x-deadline-ms") {
                deadline_ms = Some(value.trim().to_string());
            } else if key.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            }
        }
    }
    let body_start = header_end + 4;
    if content_length > max_body {
        // How much of the oversized body is still in flight, bounded by
        // 2x the limit so a hostile Content-Length can't make us read
        // forever.
        let discard = content_length
            .saturating_sub(buf.len().saturating_sub(body_start))
            .min(2 * max_body);
        buf.clear();
        return Parsed::TooLarge {
            content_length,
            discard,
        };
    }
    let total = body_start + content_length;
    if buf.len() < total {
        return Parsed::NeedMore;
    }
    let keep_alive = if version.eq_ignore_ascii_case("HTTP/1.0") {
        connection.as_deref() == Some("keep-alive")
    } else {
        connection.as_deref() != Some("close")
    };
    let leftover = buf.split_off(total);
    let raw = std::mem::take(buf);
    if std::str::from_utf8(&raw[body_start..]).is_err() {
        return Parsed::Invalid(400, "body is not utf-8".to_string());
    }
    Parsed::Complete(
        Box::new(HttpRequest {
            method,
            path,
            deadline_ms,
            keep_alive,
            raw,
            body_start,
        }),
        leftover,
    )
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

pub(crate) type Response = (u16, Vec<(&'static str, String)>, String);

fn respond(status: u16, body: String) -> Response {
    (status, Vec::new(), body)
}

fn status_for(err: &ServeError) -> u16 {
    match err {
        ServeError::ModelNotFound(_) => 404,
        ServeError::BadRequest(_) => 400,
        ServeError::PayloadTooLarge(_) => 413,
        ServeError::Overloaded(_) => 429,
        ServeError::DeadlineExceeded(_) => 504,
        ServeError::Unavailable(_) => 503,
        ServeError::ModelLoad(_) | ServeError::Internal(_) => 500,
    }
}

pub(crate) fn route(request: &HttpRequest, front: &FrontState) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(front),
        ("GET", "/metrics") => respond(200, geotorch_telemetry::snapshot_json()),
        ("POST", path) if path.starts_with("/predict/") => {
            let name = &path["/predict/".len()..];
            if front.draining.load(Ordering::SeqCst) {
                return respond(503, error_json("server is draining"));
            }
            match front.clients.get(name) {
                None => respond(
                    404,
                    error_json(&ServeError::ModelNotFound(name.to_string()).to_string()),
                ),
                Some(client) => match predict(client, name, request, front) {
                    Ok(json) => respond(200, json),
                    Err(e) => {
                        let status = status_for(&e);
                        let mut headers = Vec::new();
                        if status == 429 {
                            // A full queue drains within a batch window
                            // or two; tell clients when to come back.
                            headers.push(("Retry-After", "1".to_string()));
                        }
                        (status, headers, error_json(&e.to_string()))
                    }
                },
            }
        }
        (method, path) => respond(404, error_json(&format!("no route for {method} {path}"))),
    }
}

/// Aggregate health: `draining` once a drain began, `degraded` while any
/// model worker is dead or past its backpressure high watermark, `ok`
/// otherwise. Per-model readiness rides along so an operator can see
/// *which* model is the problem.
fn healthz(front: &FrontState) -> Response {
    let draining = front.draining.load(Ordering::SeqCst);
    let mut degraded = false;
    let mut model_status = Vec::new();
    let mut queue_depth = 0usize;
    for (name, client) in &front.clients {
        let state = if client.has_died() {
            degraded = true;
            "dead"
        } else if !client.is_alive() {
            degraded = true;
            "stopped"
        } else if client.is_pressured() {
            degraded = true;
            "pressured"
        } else {
            "ok"
        };
        queue_depth += client.queue_depth();
        model_status.push((name.clone(), state.to_value()));
    }
    let status = if draining {
        "draining"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    let models = Value::Array(
        front
            .clients
            .keys()
            .map(|name| Value::String(name.clone()))
            .collect(),
    );
    let payload = Value::Object(vec![
        ("status".to_string(), status.to_value()),
        ("models".to_string(), models),
        ("model_status".to_string(), Value::Object(model_status)),
        ("queue_depth".to_string(), (queue_depth as u64).to_value()),
    ]);
    // Load balancers treat non-2xx as "stop routing here" — exactly
    // what draining means. Degraded still serves.
    let http_status = if draining { 503 } else { 200 };
    (http_status, Vec::new(), render(&payload))
}

fn predict(
    client: &ModelClient,
    name: &str,
    request: &HttpRequest,
    front: &FrontState,
) -> Result<String, ServeError> {
    let deadline = match &request.deadline_ms {
        None => front.default_deadline,
        Some(raw) => {
            let ms: u64 = raw.trim().parse().map_err(|_| {
                ServeError::BadRequest(format!("X-Deadline-Ms: `{raw}` is not a number"))
            })?;
            Some(Duration::from_millis(ms))
        }
    };
    let sample: Tensor = serde_json::from_str(request.body())
        .map_err(|e| ServeError::BadRequest(format!("tensor payload: {e}")))?;
    let output = client.predict_with_deadline(sample, deadline)?;
    let mut fields = vec![("model".to_string(), name.to_value())];
    match output.to_value() {
        Value::Object(tensor_fields) => fields.extend(tensor_fields),
        other => fields.push(("output".to_string(), other)),
    }
    Ok(render(&Value::Object(fields)))
}

fn render(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| error_json(&e.to_string()))
}

pub(crate) fn error_json(msg: &str) -> String {
    render(&Value::Object(vec![(
        "error".to_string(),
        msg.to_value(),
    )]))
}

/// Write one response (chaos hook: `serve.http.write` — an injected
/// fault closes the connection without writing). Returns whether the
/// full response went out; the caller closes the connection when it
/// didn't, or when `keep_alive` is false.
pub(crate) fn send_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&'static str, String)],
    body: &str,
    keep_alive: bool,
) -> bool {
    if let Err(msg) = geotorch_telemetry::fault_point!("serve.http.write") {
        // Simulate a broken response path: close without writing.
        let _ = msg;
        return false;
    }
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let mut headers = String::new();
    for (key, value) in extra_headers {
        headers.push_str(&format!("{key}: {value}\r\n"));
    }
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n{headers}Content-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    );
    let ok = stream.write_all(response.as_bytes()).is_ok();
    stream.flush().ok();
    ok
}
