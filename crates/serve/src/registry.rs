//! The model registry: name → constructor (+ optional checkpoint).
//!
//! A [`Registry`] is the declarative half of the serving subsystem: it
//! records how to *build* each model and where its trained weights live.
//! [`Registry::spawn_all`] (called by [`crate::Server::start`]) turns
//! every entry into a [`ModelWorker`]: the constructor runs on the
//! worker thread, the checkpoint is loaded through
//! [`geotorch_core::checkpoint::load_named`] — so a wrong-architecture
//! or wrong-model checkpoint aborts startup with an error instead of a
//! panic — and the model is flipped to eval mode before the first
//! request.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use geotorch_core::DeltaStore;
use geotorch_models::{GridModel, RasterClassifier, Segmenter};

use crate::batcher::{BatchConfig, ModelWorker};
use crate::{ClassifierServe, GridServe, SegmenterServe, ServeError, ServeModel};

type Builder = Arc<dyn Fn() -> Box<dyn ServeModel> + Send + Sync>;

struct Entry {
    builder: Builder,
    checkpoint: Option<PathBuf>,
    /// Root directory of this model's [`DeltaStore`], when the model
    /// participates in the replicated registry (publish/sync/hot-swap).
    sync_dir: Option<PathBuf>,
}

/// Named model constructors with optional checkpoints.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, Entry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a model under `name`. `build` runs on the serving
    /// thread; seed any RNG inside it so rebuilds are deterministic.
    /// When `checkpoint` is given, the file is loaded (with header
    /// validation against `name`) right after construction.
    pub fn register<F>(&mut self, name: &str, checkpoint: Option<PathBuf>, build: F)
    where
        F: Fn() -> Box<dyn ServeModel> + Send + Sync + 'static,
    {
        self.entries.insert(
            name.to_string(),
            Entry {
                builder: Arc::new(build),
                checkpoint,
                sync_dir: None,
            },
        );
    }

    /// Turn on the replicated registry for `name`: the model's weights
    /// live in a [`DeltaStore`] rooted at `dir` (created if missing),
    /// replicas load the store head at startup, and the server exposes
    /// the publish/manifest/tensor/sync routes for it. When the store is
    /// empty it is seeded from the entry's checkpoint file (if any) or
    /// from the freshly built model's state dict, so the head always
    /// exists by the time replicas spawn.
    ///
    /// Returns `false` when no model named `name` is registered.
    pub fn enable_sync(&mut self, name: &str, dir: impl Into<PathBuf>) -> bool {
        match self.entries.get_mut(name) {
            Some(entry) => {
                entry.sync_dir = Some(dir.into());
                true
            }
            None => false,
        }
    }

    /// Register a [`RasterClassifier`] (served without the optional
    /// handcrafted-feature input).
    pub fn register_classifier<M, F>(&mut self, name: &str, checkpoint: Option<PathBuf>, build: F)
    where
        M: RasterClassifier + 'static,
        F: Fn() -> M + Send + Sync + 'static,
    {
        self.register(name, checkpoint, move || Box::new(ClassifierServe(build())));
    }

    /// Register a [`Segmenter`].
    pub fn register_segmenter<M, F>(&mut self, name: &str, checkpoint: Option<PathBuf>, build: F)
    where
        M: Segmenter + 'static,
        F: Fn() -> M + Send + Sync + 'static,
    {
        self.register(name, checkpoint, move || Box::new(SegmenterServe(build())));
    }

    /// Register a [`GridModel`] served in the basic `[B, C, H, W]`
    /// representation.
    pub fn register_grid<M, F>(&mut self, name: &str, checkpoint: Option<PathBuf>, build: F)
    where
        M: GridModel + 'static,
        F: Fn() -> M + Send + Sync + 'static,
    {
        self.register(name, checkpoint, move || Box::new(GridServe(build())));
    }

    /// The registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Spawn one [`ModelWorker`] per entry. The first model that fails
    /// to build or load aborts the whole call (already-spawned workers
    /// shut down cleanly on drop).
    pub fn spawn_all(
        &self,
        config: BatchConfig,
    ) -> Result<BTreeMap<String, ModelWorker>, ServeError> {
        self.spawn_all_with_stores(config).map(|(workers, _)| workers)
    }

    /// Like [`Registry::spawn_all`], additionally opening (and seeding,
    /// if empty) the [`DeltaStore`] of every sync-enabled entry. Sync
    /// entries spawn with the store head as both their weights and
    /// their version label, so every reply is attributable to a
    /// manifest id from the very first request.
    #[allow(clippy::type_complexity)]
    pub fn spawn_all_with_stores(
        &self,
        config: BatchConfig,
    ) -> Result<
        (
            BTreeMap<String, ModelWorker>,
            BTreeMap<String, Arc<Mutex<DeltaStore>>>,
        ),
        ServeError,
    > {
        let mut workers = BTreeMap::new();
        let mut stores = BTreeMap::new();
        for (name, entry) in &self.entries {
            let builder = Arc::clone(&entry.builder);
            let model_name = name.clone();
            let worker = match &entry.sync_dir {
                None => {
                    let checkpoint = entry.checkpoint.clone();
                    ModelWorker::spawn(name, config, move || {
                        let model = builder();
                        if let Some(path) = &checkpoint {
                            load_checkpoint(model.as_ref(), &model_name, path)?;
                        }
                        Ok(model)
                    })?
                }
                Some(dir) => {
                    let store = open_store(name, dir, entry)?;
                    let head_id = store
                        .head()
                        .map(|h| h.id.clone())
                        .expect("open_store guarantees a head");
                    let head_path = store.head_path();
                    let worker =
                        ModelWorker::spawn_versioned(name, config, &head_id, move || {
                            let model = builder();
                            load_checkpoint(model.as_ref(), &model_name, &head_path)?;
                            Ok(model)
                        })?;
                    stores.insert(name.clone(), Arc::new(Mutex::new(store)));
                    worker
                }
            };
            workers.insert(name.clone(), worker);
        }
        Ok((workers, stores))
    }
}

/// Open a sync entry's store, seeding an empty one so the head always
/// exists: from the classic checkpoint file when the entry has one,
/// otherwise from the freshly built model's own state dict.
fn open_store(name: &str, dir: &Path, entry: &Entry) -> Result<DeltaStore, ServeError> {
    let mut store = DeltaStore::open(dir, Some(name))
        .map_err(|e| ServeError::ModelLoad(format!("{name}: delta store: {e}")))?;
    if store.head().is_none() {
        let state = match &entry.checkpoint {
            Some(path) => {
                let json = std::fs::read_to_string(path).map_err(|e| {
                    ServeError::ModelLoad(format!("{name}: {}: {e}", path.display()))
                })?;
                let (meta, tensors) = geotorch_core::checkpoint::parse_bytes(&json)
                    .map_err(|e| ServeError::ModelLoad(format!("{name}: {e}")))?;
                if let Some(saved) = &meta.model {
                    if saved != name {
                        return Err(ServeError::ModelLoad(format!(
                            "{name}: checkpoint is for model `{saved}`"
                        )));
                    }
                }
                tensors
            }
            None => (entry.builder)().state_dict(),
        };
        store
            .publish(&state)
            .map_err(|e| ServeError::ModelLoad(format!("{name}: seed publish: {e}")))?;
    }
    Ok(store)
}

fn load_checkpoint(
    model: &dyn ServeModel,
    name: &str,
    path: &Path,
) -> Result<(), ServeError> {
    if let Err(msg) = geotorch_telemetry::fault_point!("serve.registry.load") {
        return Err(ServeError::ModelLoad(format!(
            "{name}: injected load fault: {msg}"
        )));
    }
    geotorch_core::checkpoint::load_named(model, name, path)
        .map_err(|e| ServeError::ModelLoad(format!("{name}: {e}")))
}
