//! The model registry: name → constructor (+ optional checkpoint).
//!
//! A [`Registry`] is the declarative half of the serving subsystem: it
//! records how to *build* each model and where its trained weights live.
//! [`Registry::spawn_all`] (called by [`crate::Server::start`]) turns
//! every entry into a [`ModelWorker`]: the constructor runs on the
//! worker thread, the checkpoint is loaded through
//! [`geotorch_core::checkpoint::load_named`] — so a wrong-architecture
//! or wrong-model checkpoint aborts startup with an error instead of a
//! panic — and the model is flipped to eval mode before the first
//! request.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use geotorch_models::{GridModel, RasterClassifier, Segmenter};

use crate::batcher::{BatchConfig, ModelWorker};
use crate::{ClassifierServe, GridServe, SegmenterServe, ServeError, ServeModel};

type Builder = Arc<dyn Fn() -> Box<dyn ServeModel> + Send + Sync>;

struct Entry {
    builder: Builder,
    checkpoint: Option<PathBuf>,
}

/// Named model constructors with optional checkpoints.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, Entry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a model under `name`. `build` runs on the serving
    /// thread; seed any RNG inside it so rebuilds are deterministic.
    /// When `checkpoint` is given, the file is loaded (with header
    /// validation against `name`) right after construction.
    pub fn register<F>(&mut self, name: &str, checkpoint: Option<PathBuf>, build: F)
    where
        F: Fn() -> Box<dyn ServeModel> + Send + Sync + 'static,
    {
        self.entries.insert(
            name.to_string(),
            Entry {
                builder: Arc::new(build),
                checkpoint,
            },
        );
    }

    /// Register a [`RasterClassifier`] (served without the optional
    /// handcrafted-feature input).
    pub fn register_classifier<M, F>(&mut self, name: &str, checkpoint: Option<PathBuf>, build: F)
    where
        M: RasterClassifier + 'static,
        F: Fn() -> M + Send + Sync + 'static,
    {
        self.register(name, checkpoint, move || Box::new(ClassifierServe(build())));
    }

    /// Register a [`Segmenter`].
    pub fn register_segmenter<M, F>(&mut self, name: &str, checkpoint: Option<PathBuf>, build: F)
    where
        M: Segmenter + 'static,
        F: Fn() -> M + Send + Sync + 'static,
    {
        self.register(name, checkpoint, move || Box::new(SegmenterServe(build())));
    }

    /// Register a [`GridModel`] served in the basic `[B, C, H, W]`
    /// representation.
    pub fn register_grid<M, F>(&mut self, name: &str, checkpoint: Option<PathBuf>, build: F)
    where
        M: GridModel + 'static,
        F: Fn() -> M + Send + Sync + 'static,
    {
        self.register(name, checkpoint, move || Box::new(GridServe(build())));
    }

    /// The registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Spawn one [`ModelWorker`] per entry. The first model that fails
    /// to build or load aborts the whole call (already-spawned workers
    /// shut down cleanly on drop).
    pub fn spawn_all(
        &self,
        config: BatchConfig,
    ) -> Result<BTreeMap<String, ModelWorker>, ServeError> {
        let mut workers = BTreeMap::new();
        for (name, entry) in &self.entries {
            let builder = Arc::clone(&entry.builder);
            let checkpoint = entry.checkpoint.clone();
            let model_name = name.clone();
            let worker = ModelWorker::spawn(name, config, move || {
                let model = builder();
                if let Some(path) = &checkpoint {
                    load_checkpoint(model.as_ref(), &model_name, path)?;
                }
                Ok(model)
            })?;
            workers.insert(name.clone(), worker);
        }
        Ok(workers)
    }
}

fn load_checkpoint(
    model: &dyn ServeModel,
    name: &str,
    path: &Path,
) -> Result<(), ServeError> {
    if let Err(msg) = geotorch_telemetry::fault_point!("serve.registry.load") {
        return Err(ServeError::ModelLoad(format!(
            "{name}: injected load fault: {msg}"
        )));
    }
    geotorch_core::checkpoint::load_named(model, name, path)
        .map_err(|e| ServeError::ModelLoad(format!("{name}: {e}")))
}
