//! Scene-scale tiled inference through the micro-batching scheduler.
//!
//! [`run_mosaic`] turns "segment this huge scene" into a stream of
//! overlapping tile predictions: a `GridSampler` walks the
//! region-of-interest, a bounded crew of submitter threads pushes tiles
//! through a [`ModelClient`] (so admission control, deadlines, and
//! replica routing govern exactly as they do for external requests), and
//! a [`MosaicAccumulator`] stitches the per-tile outputs back into one
//! prediction raster with overlap blending.
//!
//! # Geometry and seam exactness
//!
//! Convolutional segmenters are locally deterministic: output pixel `p`
//! depends only on inputs within the receptive-field radius of `p`, plus
//! the zero padding a network edge introduces. So a tile prediction
//! agrees with the whole-scene prediction everywhere except a border
//! ring where the tile's edge padding differs from the scene's interior.
//! [`TileConfig::halo`] is the width of that distrusted ring: the
//! stitcher keeps only each tile's *core* (`core_of`), and with
//!
//! * `halo ≥ ⌈receptive field / 2⌉`,
//! * `stride ≤ tile − 2·halo` (cores still cover every pixel), and
//! * tile offsets aligned to the model's total downsampling factor
//!   ([`TileConfig::alignment`], so pooling grids line up),
//!
//! the mosaic is *numerically equal* to the unsplit forward pass — the
//! seam-consistency property the `tiling` test suite pins to ≤ 4 ulp
//! (FMA-only differences). With a smaller halo the mosaic is approximate
//! and [`BlendMode::Cosine`] tapers the remaining seams.
//!
//! # Backpressure
//!
//! At most [`TileConfig::max_in_flight`] tiles are in flight; each holds
//! one admission slot in the model's bounded queue. Keep
//! `max_in_flight ≤ queue_bound` or external traffic can starve the
//! mosaic into `Overloaded` rejections mid-scene. Any tile failure
//! (shed, deadline, dead replica, injected fault) cancels the remaining
//! tiles and fails the whole mosaic — a partial mosaic is never
//! returned, and the RAII admission guards inside the batcher free every
//! slot on the error path.
//!
//! Fault points: `tile.fetch` (before a tile is cut from the scene) and
//! `tile.stitch` (before a prediction is blended in).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use geotorch_datasets::samplers::GridSampler;
use geotorch_raster::{core_of, BlendMode, MosaicAccumulator, Raster, Window};
use geotorch_tensor::Tensor;

use crate::batcher::ModelClient;
use crate::ServeError;

/// Tiles currently being fetched/predicted/stitched, across every
/// running mosaic — exported as the `serve.tile.in_flight` gauge.
static TILES_IN_FLIGHT: AtomicU64 = AtomicU64::new(0);

fn register_gauges() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        geotorch_telemetry::register_gauge("serve.tile.in_flight", || {
            TILES_IN_FLIGHT.load(Ordering::Relaxed)
        });
    });
}

/// Geometry and flow-control knobs for one tiled-inference run.
#[derive(Debug, Clone, Copy)]
pub struct TileConfig {
    /// Square tile extent fed to the model, in pixels.
    pub tile: usize,
    /// Window stride; `tile − 2·halo` or less keeps cores gap-free.
    pub stride: usize,
    /// Distrusted border ring trimmed from interior tile edges. Use at
    /// least the model's receptive-field radius (rounded up to
    /// `alignment`) for exact seams; `0` trusts tiles to their edges.
    pub halo: usize,
    /// Tile starts, extents, and strides must be multiples of this (the
    /// model's total downsampling factor — e.g. 4 for a 2-level UNet) so
    /// every tile sees the same pooling grid as the whole scene. Use `1`
    /// for models without downsampling.
    pub alignment: usize,
    /// Output planes per pixel the model produces.
    pub classes: usize,
    /// Most tiles in flight at once (submitter threads). Keep at or
    /// below the model's `queue_bound`.
    pub max_in_flight: usize,
    /// Per-tile deadline handed to the batcher; `None` waits forever.
    pub tile_deadline: Option<Duration>,
    /// How overlapping cores are blended.
    pub blend: BlendMode,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            tile: 64,
            stride: 16,
            halo: 24,
            alignment: 4,
            classes: 1,
            max_in_flight: 4,
            tile_deadline: None,
            blend: BlendMode::Uniform,
        }
    }
}

impl TileConfig {
    /// Validate the geometry against a region of interest. Catches the
    /// misconfigurations that would otherwise surface as coverage gaps
    /// or misaligned pooling grids deep inside the run.
    pub fn validate(&self, roi: &Window) -> Result<(), ServeError> {
        let bad = |msg: String| Err(ServeError::BadRequest(msg));
        if self.classes == 0 || self.max_in_flight == 0 {
            return bad("classes and max_in_flight must be positive".into());
        }
        if self.alignment == 0 {
            return bad("alignment must be at least 1".into());
        }
        if self.tile > roi.height || self.tile > roi.width {
            return bad(format!(
                "tile {} does not fit roi {}x{}",
                self.tile, roi.height, roi.width
            ));
        }
        if self.stride == 0 || self.stride > self.tile {
            return bad(format!(
                "stride {} outside 1..=tile ({})",
                self.stride, self.tile
            ));
        }
        if 2 * self.halo >= self.tile {
            return bad(format!(
                "halo {} consumes the {}-pixel tile",
                self.halo, self.tile
            ));
        }
        if self.stride > self.tile - 2 * self.halo {
            return bad(format!(
                "stride {} > tile − 2·halo = {} leaves coverage gaps between tile cores",
                self.stride,
                self.tile - 2 * self.halo
            ));
        }
        for (what, value) in [
            ("tile", self.tile),
            ("stride", self.stride),
            ("roi height − tile", roi.height - self.tile),
            ("roi width − tile", roi.width - self.tile),
        ] {
            if value % self.alignment != 0 {
                return bad(format!(
                    "{what} ({value}) is not a multiple of alignment {} — \
                     clamped tiles would leave the model's downsampling grid",
                    self.alignment
                ));
            }
        }
        Ok(())
    }
}

/// What a finished mosaic run reports alongside the prediction raster.
#[derive(Debug, Clone)]
pub struct MosaicStats {
    /// Tiles predicted and stitched.
    pub tiles: usize,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Per-tile predict latency (submit → reply), in completion order.
    pub tile_latencies: Vec<Duration>,
}

impl MosaicStats {
    /// Tiles per second over the whole run.
    pub fn tiles_per_sec(&self) -> f64 {
        self.tiles as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// In-order stitching state shared by the submitter threads: results
/// arrive in completion order, are parked in `pending`, and are blended
/// strictly in tile-index order — so the mosaic's floating-point
/// accumulation order is deterministic regardless of scheduling.
/// `pending` never holds more than `max_in_flight` entries.
struct StitchState {
    acc: MosaicAccumulator,
    pending: BTreeMap<usize, Tensor>,
    next: usize,
}

/// Everything the submitter crew shares during one run.
struct RunState<'a> {
    scene: &'a Raster,
    windows: &'a [Window],
    roi: Window,
    cfg: TileConfig,
    next_tile: AtomicUsize,
    cancelled: AtomicBool,
    first_error: Mutex<Option<ServeError>>,
    stitch: Mutex<StitchState>,
    latencies: Mutex<Vec<Duration>>,
}

impl RunState<'_> {
    /// Record the first failure and cancel the remaining tiles. The
    /// in-flight ones finish their predict call (their admission slots
    /// release via the batcher's RAII guards) and then exit.
    fn fail(&self, err: ServeError) {
        let mut slot = self.first_error.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(err);
        }
        self.cancelled.store(true, Ordering::SeqCst);
    }

    fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// Run a segmentation model over `roi` of `scene` tile by tile and
/// stitch the blended prediction mosaic. See the module docs for the
/// geometry contract; `cfg.validate(&roi)` runs first, the scene must
/// contain the roi, and the model must map `[bands, tile, tile]` to
/// `[classes, tile, tile]`.
///
/// On success the mosaic raster is georeferenced to the roi corner and
/// every pixel is covered (enforced by the accumulator). On any tile
/// failure the whole run fails with that first error — never a partial
/// mosaic.
pub fn run_mosaic(
    client: &ModelClient,
    scene: &Raster,
    roi: Window,
    cfg: TileConfig,
) -> Result<(Raster, MosaicStats), ServeError> {
    register_gauges();
    cfg.validate(&roi)?;
    if !scene.extent().contains(&roi) {
        return Err(ServeError::BadRequest(format!(
            "roi {roi:?} outside scene {}x{}",
            scene.height(),
            scene.width()
        )));
    }
    let sampler = GridSampler::new(roi, (cfg.tile, cfg.tile), (cfg.stride, cfg.stride))
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
    let windows: Vec<Window> = sampler.windows().collect();
    let started = Instant::now();

    let state = RunState {
        scene,
        windows: &windows,
        roi,
        cfg,
        next_tile: AtomicUsize::new(0),
        cancelled: AtomicBool::new(false),
        first_error: Mutex::new(None),
        stitch: Mutex::new(StitchState {
            acc: MosaicAccumulator::new(cfg.classes, roi.height, roi.width, cfg.blend),
            pending: BTreeMap::new(),
            next: 0,
        }),
        latencies: Mutex::new(Vec::with_capacity(windows.len())),
    };

    let crew = state.cfg.max_in_flight.min(windows.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..crew {
            let client = client.clone();
            let state = &state;
            scope.spawn(move || submit_tiles(&client, state));
        }
    });

    let first_error = state
        .first_error
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(err) = first_error {
        geotorch_telemetry::count!("serve.tile.mosaic_failed", 1);
        return Err(err);
    }

    let stitch = state.stitch.into_inner().unwrap_or_else(|e| e.into_inner());
    debug_assert_eq!(stitch.next, windows.len(), "stitcher fell behind");
    let mut mosaic = stitch
        .acc
        .finalize()
        .map_err(|e| ServeError::Internal(format!("mosaic finalize: {e}")))?;
    mosaic.transform = scene.transform.for_window(roi.row, roi.col);
    mosaic.epsg = scene.epsg;
    geotorch_telemetry::count!("serve.tile.mosaics", 1);

    let mut tile_latencies = state
        .latencies
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    tile_latencies.shrink_to_fit();
    let stats = MosaicStats {
        tiles: windows.len(),
        elapsed: started.elapsed(),
        tile_latencies,
    };
    Ok((mosaic, stats))
}

/// One submitter: pull the next tile index, cut the window, predict
/// through the batcher, park the result for in-order stitching.
fn submit_tiles(client: &ModelClient, state: &RunState<'_>) {
    loop {
        if state.cancelled() {
            return;
        }
        let i = state.next_tile.fetch_add(1, Ordering::SeqCst);
        if i >= state.windows.len() {
            return;
        }
        TILES_IN_FLIGHT.fetch_add(1, Ordering::Relaxed);
        let outcome = process_tile(client, state, i);
        TILES_IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
        if let Err(err) = outcome {
            state.fail(err);
            return;
        }
    }
}

fn process_tile(client: &ModelClient, state: &RunState<'_>, i: usize) -> Result<(), ServeError> {
    let window = state.windows[i];
    if let Err(msg) = geotorch_telemetry::fault_point!("tile.fetch") {
        return Err(ServeError::Internal(format!(
            "injected tile fetch fault: {msg}"
        )));
    }
    let input = state
        .scene
        .read_window_tensor(&window)
        .map_err(|e| ServeError::Internal(format!("tile extraction: {e}")))?;
    geotorch_telemetry::count!("serve.tile.requests", 1);
    let submitted = Instant::now();
    let pred = client.predict_with_deadline(input, state.cfg.tile_deadline)?;
    let latency = submitted.elapsed();
    {
        let mut lat = state.latencies.lock().unwrap_or_else(|e| e.into_inner());
        lat.push(latency);
    }
    let want = [state.cfg.classes, window.height, window.width];
    if pred.shape() != want {
        return Err(ServeError::Internal(format!(
            "model returned {:?} for a tile expecting {:?}",
            pred.shape(),
            want
        )));
    }
    stitch_ready(state, i, pred)
}

/// Park tile `i`'s prediction and blend every consecutive ready tile.
/// Stitching strictly in tile-index order keeps the accumulation order
/// (and thus the mosaic's floating-point result) independent of thread
/// scheduling.
fn stitch_ready(state: &RunState<'_>, i: usize, pred: Tensor) -> Result<(), ServeError> {
    let mut stitch = state.stitch.lock().unwrap_or_else(|e| e.into_inner());
    stitch.pending.insert(i, pred);
    while let Some(pred) = {
        let next = stitch.next;
        stitch.pending.remove(&next)
    } {
        if let Err(msg) = geotorch_telemetry::fault_point!("tile.stitch") {
            return Err(ServeError::Internal(format!(
                "injected tile stitch fault: {msg}"
            )));
        }
        let window = state.windows[stitch.next];
        let core = core_of(&window, &state.roi, state.cfg.halo);
        let tile_local = window.relative_to(&state.roi);
        let core_local = core.relative_to(&state.roi);
        stitch
            .acc
            .add_tile(&tile_local, &core_local, &pred)
            .map_err(|e| ServeError::Internal(format!("tile stitch: {e}")))?;
        geotorch_telemetry::count!("serve.tile.stitched", 1);
        stitch.next += 1;
    }
    Ok(())
}
