//! The event-driven HTTP front: one epoll readiness loop that owns
//! every idle or partially-read connection, plus a small pool of
//! responder threads that run the blocking part (routing, model
//! predict, response write).
//!
//! The split is what kills head-of-line blocking: a slow or stalled
//! client costs the server one non-blocking socket and a few hundred
//! buffered bytes inside the event loop — never a thread. Only a
//! *complete* request is handed to a responder, so the pool's threads
//! are always doing useful work. After a keep-alive response the
//! responder hands the connection back to the loop (through a channel,
//! waking it via a self-connected UDP socket), where any pipelined
//! bytes already buffered are parsed immediately.
//!
//! Per-connection state machine:
//!
//! ```text
//!            accept                    header/body complete
//!  listener ────────▶ READING ───────────────────────────────▶ DISPATCHED
//!                      │  │ ▲                                  (responder:
//!          idle timer  │  │ │ keep-alive hand-back              route +
//!            ──▶ 408   │  │ └──────────────────────────────────  write)
//!                      │  │ Content-Length > max_body
//!                      │  └──────────────▶ DISCARDING ──▶ 413, close
//!                      │ EOF / parse error     (bounded body drain)
//!                      ▼
//!                 close (disconnect / 400)
//! ```
//!
//! Accept-side robustness: transient `accept` failures (EMFILE, ...)
//! count `serve.error.accept` and take the listener *out of* the
//! interest set for a bounded, exponentially growing pause — with
//! level-triggered epoll that is the only way to back off without
//! spinning on a permanently-ready listener. `serve.http.accept` is the
//! chaos hook for that path.
//!
//! Gauges: `serve.open_connections` (live sockets, wherever they
//! currently live) and the `serve.epoll.wakeups` counter.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::epoll::{EpollEvent, Poller, EPOLLIN, EPOLLRDHUP};
use crate::http::{
    count_error_status, error_json, route, send_response, try_parse, FrontState, HttpRequest,
    Parsed,
};
use crate::ServeError;

/// Live sockets across the event loop and the responders, exported as
/// the `serve.open_connections` gauge.
static OPEN_CONNECTIONS: AtomicU64 = AtomicU64::new(0);

fn register_front_gauges() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        geotorch_telemetry::register_gauge("serve.open_connections", || {
            OPEN_CONNECTIONS.load(Ordering::Relaxed)
        });
    });
}

/// RAII increment of the open-connection gauge; travels with the
/// connection so the count stays honest no matter which thread closes
/// the socket.
struct OpenGuard;

impl OpenGuard {
    fn new() -> OpenGuard {
        OPEN_CONNECTIONS.fetch_add(1, Ordering::Relaxed);
        OpenGuard
    }
}

impl Drop for OpenGuard {
    fn drop(&mut self) {
        OPEN_CONNECTIONS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One client connection and its incremental parse state.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by a complete request. Doubles
    /// as the pipelining buffer after a keep-alive hand-back.
    buf: Vec<u8>,
    /// Completed requests on this connection (keep-alive reuse count).
    served: u64,
    /// When the idle/read timer fires for this connection.
    idle_at: Instant,
    /// Remaining oversized-body bytes to discard before `pending` can
    /// be sent without the close RSTing unread data.
    discard: usize,
    /// Deferred error response (the 413) to send once `discard` drains.
    pending: Option<(u16, String)>,
    /// Whether the per-request `serve.http.read` chaos hook ran yet.
    fault_checked: bool,
    _open: OpenGuard,
}

impl Conn {
    fn new(stream: TcpStream, socket_timeout: Duration) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            served: 0,
            idle_at: Instant::now() + socket_timeout,
            discard: 0,
            pending: None,
            fault_checked: false,
            _open: OpenGuard::new(),
        }
    }
}

/// A complete request plus the connection it arrived on, queued for a
/// responder thread.
struct Job {
    conn: Conn,
    request: HttpRequest,
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
}

impl PoolShared {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
        self.available.notify_one();
    }
}

/// The running front: event-loop thread + responder pool.
pub(crate) struct Front {
    front: Arc<FrontState>,
    waker: UdpSocket,
    loop_join: Option<JoinHandle<()>>,
    pool: Arc<PoolShared>,
    pool_joins: Vec<JoinHandle<()>>,
}

impl Front {
    pub(crate) fn start(
        listener: TcpListener,
        front: Arc<FrontState>,
        http_workers: usize,
    ) -> Result<Front, ServeError> {
        register_front_gauges();
        let internal = |e: std::io::Error, what: &str| {
            ServeError::Internal(format!("{what} failed: {e}"))
        };
        listener
            .set_nonblocking(true)
            .map_err(|e| internal(e, "listener set_nonblocking"))?;
        // The wake channel: a UDP socket connected to itself. One byte
        // sent from any thread makes the epoll loop's next wait return.
        let waker = UdpSocket::bind("127.0.0.1:0").map_err(|e| internal(e, "waker bind"))?;
        let waker_addr = waker.local_addr().map_err(|e| internal(e, "waker addr"))?;
        waker.connect(waker_addr).map_err(|e| internal(e, "waker connect"))?;
        waker
            .set_nonblocking(true)
            .map_err(|e| internal(e, "waker set_nonblocking"))?;
        let poller = Poller::new().map_err(|e| internal(e, "epoll_create1"))?;

        let pool = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let (ret_tx, ret_rx) = mpsc::channel::<Conn>();
        let mut pool_joins = Vec::new();
        for i in 0..http_workers.max(1) {
            let shared = Arc::clone(&pool);
            let front = Arc::clone(&front);
            let ret_tx = ret_tx.clone();
            let waker = waker.try_clone().map_err(|e| internal(e, "waker clone"))?;
            let join = std::thread::Builder::new()
                .name(format!("serve-http-{i}"))
                .spawn(move || responder_loop(&shared, &front, &ret_tx, &waker))
                .map_err(|e| internal(e, "spawn"))?;
            pool_joins.push(join);
        }
        drop(ret_tx);

        let loop_waker = waker.try_clone().map_err(|e| internal(e, "waker clone"))?;
        let loop_front = Arc::clone(&front);
        let loop_pool = Arc::clone(&pool);
        let loop_join = std::thread::Builder::new()
            .name("serve-epoll".to_string())
            .spawn(move || {
                EventLoop {
                    poller,
                    listener,
                    waker: loop_waker,
                    front: loop_front,
                    pool: loop_pool,
                    ret_rx,
                    slots: Vec::new(),
                    gens: Vec::new(),
                    free: Vec::new(),
                    accept_retry_at: None,
                    accept_backoff: ACCEPT_BACKOFF_MIN,
                }
                .run();
            })
            .map_err(|e| internal(e, "spawn"))?;

        Ok(Front {
            front,
            waker,
            loop_join: Some(loop_join),
            pool,
            pool_joins,
        })
    }

    /// Stop accepting, close idle connections, finish every request
    /// already read, join all threads. Idempotent.
    pub(crate) fn stop(&mut self) {
        self.front.stop.store(true, Ordering::SeqCst);
        self.waker.send(&[1]).ok();
        if let Some(join) = self.loop_join.take() {
            join.join().ok();
        }
        // Responders drain the remaining queue, then exit.
        self.pool.stop.store(true, Ordering::SeqCst);
        self.pool.available.notify_all();
        for join in self.pool_joins.drain(..) {
            join.join().ok();
        }
    }
}

fn responder_loop(
    shared: &PoolShared,
    front: &Arc<FrontState>,
    ret_tx: &Sender<Conn>,
    waker: &UdpSocket,
) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Job { mut conn, request } = job;
        // Blocking mode for the model call and the response write; the
        // socket timeouts set at accept bound the write.
        conn.stream.set_nonblocking(false).ok();
        let (status, headers, body) = route(&request, front);
        geotorch_telemetry::count!("serve.http.requests", 1);
        count_error_status(status);
        // Honor keep-alive unless the server is going down.
        let keep = request.keep_alive && !front.stop.load(Ordering::SeqCst);
        let sent = send_response(&mut conn.stream, status, &headers, &body, keep);
        if !sent || !keep {
            continue; // drop = close
        }
        conn.served += 1;
        conn.fault_checked = false;
        conn.idle_at = Instant::now() + front.socket_timeout;
        if conn.stream.set_nonblocking(true).is_err() {
            continue;
        }
        if ret_tx.send(conn).is_ok() {
            waker.send(&[1]).ok();
        }
    }
}

/// Token-space reserved for the two non-connection fds.
const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);
/// Largest poll interval; also the idle-sweep granularity floor.
const MAX_WAIT: Duration = Duration::from_millis(500);

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    waker: UdpSocket,
    front: Arc<FrontState>,
    pool: Arc<PoolShared>,
    ret_rx: Receiver<Conn>,
    /// Connection slots; the epoll token is `(generation << 32) | index`
    /// so a readiness report for a slot that has since been reused is
    /// recognisably stale.
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    /// While set, the listener is out of the interest set (accept
    /// backoff); re-registered when the deadline passes.
    accept_retry_at: Option<Instant>,
    accept_backoff: Duration,
}

impl EventLoop {
    fn run(mut self) {
        if self
            .poller
            .add(self.listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)
            .is_err()
            || self
                .poller
                .add(self.waker.as_raw_fd(), TOKEN_WAKER, EPOLLIN)
                .is_err()
        {
            // Without a working poller there is nothing to serve; the
            // stop flag still lets shutdown join this thread.
            while !self.front.stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(10));
            }
            return;
        }
        let mut events = [EpollEvent::default(); 256];
        while !self.front.stop.load(Ordering::SeqCst) {
            let timeout = self.poll_timeout_ms();
            let n = match self.poller.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            };
            geotorch_telemetry::count!("serve.epoll.wakeups", 1);
            if self.front.stop.load(Ordering::SeqCst) {
                break;
            }
            for event in &events[..n] {
                let token = event.data;
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    _ => self.conn_ready(token),
                }
            }
            // Keep-alive connections handed back by responders; drained
            // every pass so a missed wake datagram can't strand one.
            while let Ok(conn) = self.ret_rx.try_recv() {
                self.readmit(conn);
            }
            self.maybe_resume_accept();
            self.sweep_idle();
        }
        self.close_all();
    }

    /// How long the next `epoll_pwait` may block: until the nearest
    /// idle deadline or accept-backoff expiry, capped at [`MAX_WAIT`].
    fn poll_timeout_ms(&self) -> i32 {
        let now = Instant::now();
        let mut next: Option<Instant> = self.accept_retry_at;
        for conn in self.slots.iter().flatten() {
            next = Some(match next {
                Some(t) => t.min(conn.idle_at),
                None => conn.idle_at,
            });
        }
        let wait = match next {
            None => MAX_WAIT,
            Some(t) => t.saturating_duration_since(now).min(MAX_WAIT),
        };
        wait.as_millis() as i32
    }

    // ---- accept path ---------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            if self.front.stop.load(Ordering::SeqCst) {
                return;
            }
            // Chaos hook for the backoff path: an injected error is a
            // failed accept attempt (the connection stays in the
            // kernel backlog and is picked up after the pause).
            if let Err(msg) = geotorch_telemetry::fault_point!("serve.http.accept") {
                let _ = msg;
                self.accept_failed();
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    self.register_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.accept_failed();
                    return;
                }
            }
        }
    }

    /// Transient accept failure (EMFILE under a connection storm, a
    /// reset mid-handshake): count it and pull the listener out of the
    /// interest set for the backoff window. With level-triggered epoll
    /// a still-pending backlog would otherwise wake the loop instantly
    /// and spin it at 100% CPU — the seed front's `Err(_) => continue`
    /// bug, made worse.
    fn accept_failed(&mut self) {
        geotorch_telemetry::count!("serve.error.accept", 1);
        self.poller.del(self.listener.as_raw_fd()).ok();
        self.accept_retry_at = Some(Instant::now() + self.accept_backoff);
        self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
    }

    fn maybe_resume_accept(&mut self) {
        if let Some(at) = self.accept_retry_at {
            if Instant::now() >= at {
                self.accept_retry_at = None;
                if self
                    .poller
                    .add(self.listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)
                    .is_err()
                {
                    self.accept_failed();
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Timeouts apply whenever a responder flips the socket to
        // blocking mode for the model call + write.
        stream.set_read_timeout(Some(self.front.socket_timeout)).ok();
        stream.set_write_timeout(Some(self.front.socket_timeout)).ok();
        let conn = Conn::new(stream, self.front.socket_timeout);
        self.insert(conn);
    }

    // ---- slot bookkeeping ----------------------------------------------

    fn insert(&mut self, conn: Conn) {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        let token = ((self.gens[idx] as u64) << 32) | idx as u64;
        if self
            .poller
            .add(conn.stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP)
            .is_err()
        {
            self.free.push(idx);
            return; // conn drops → closed
        }
        self.slots[idx] = Some(conn);
    }

    /// Take a connection out of its slot (and the interest set),
    /// invalidating any still-queued events for the old token.
    fn remove(&mut self, idx: usize) -> Conn {
        let conn = self.slots[idx].take().expect("slot occupied");
        self.poller.del(conn.stream.as_raw_fd()).ok();
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        conn
    }

    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        if idx < self.slots.len() && self.gens[idx] == gen && self.slots[idx].is_some() {
            Some(idx)
        } else {
            None // stale: the slot moved on since this event was queued
        }
    }

    // ---- connection state machine --------------------------------------

    fn conn_ready(&mut self, token: u64) {
        let Some(idx) = self.resolve(token) else {
            return;
        };
        if self.slots[idx].as_ref().is_some_and(|c| c.discard > 0) {
            self.drain_discard(idx);
            return;
        }
        // Per-request chaos hook, fired once when the request's first
        // bytes are due (mirrors the seed front's read_request entry).
        {
            let conn = self.slots[idx].as_mut().expect("resolved");
            if !conn.fault_checked {
                conn.fault_checked = true;
                if let Err(msg) = geotorch_telemetry::fault_point!("serve.http.read") {
                    let mut conn = self.remove(idx);
                    respond_and_count(&mut conn, 500, &format!("injected read fault: {msg}"));
                    return;
                }
            }
        }
        let mut eof = false;
        let mut scratch = [0u8; 8192];
        loop {
            let conn = self.slots[idx].as_mut().expect("resolved");
            match std::io::Read::read(&mut conn.stream, &mut scratch) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => conn.buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        self.advance(idx, eof);
    }

    /// Parse whatever is buffered and move the connection along its
    /// state machine.
    fn advance(&mut self, idx: usize, eof: bool) {
        let max_body = self.front.max_body;
        let conn = self.slots[idx].as_mut().expect("resolved");
        conn.idle_at = Instant::now() + self.front.socket_timeout;
        match try_parse(&mut conn.buf, max_body) {
            Parsed::NeedMore => {
                if eof {
                    let mut conn = self.remove(idx);
                    close_on_eof(&mut conn);
                }
            }
            Parsed::Invalid(status, msg) => {
                let mut conn = self.remove(idx);
                respond_and_count(&mut conn, status, &msg);
            }
            Parsed::TooLarge { content_length, discard } => {
                let msg = format!(
                    "body of {content_length} bytes exceeds the {max_body} byte limit"
                );
                conn.pending = Some((413, msg));
                conn.discard = discard;
                if eof || discard == 0 {
                    self.finish_discard(idx);
                }
            }
            Parsed::Complete(request, leftover) => {
                let mut conn = self.remove(idx);
                conn.buf = leftover;
                conn.fault_checked = false;
                self.pool.push(Job { conn, request: *request });
            }
        }
    }

    /// Discard an oversized body (bounded at parse time) so the close
    /// doesn't RST the 413 off the wire, then send the deferred error.
    fn drain_discard(&mut self, idx: usize) {
        let mut scratch = [0u8; 8192];
        loop {
            let conn = self.slots[idx].as_mut().expect("resolved");
            match std::io::Read::read(&mut conn.stream, &mut scratch) {
                Ok(0) => break,
                Ok(n) => {
                    conn.discard = conn.discard.saturating_sub(n);
                    if conn.discard == 0 {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let conn = self.slots[idx].as_mut().expect("resolved");
                    conn.idle_at = Instant::now() + self.front.socket_timeout;
                    return;
                }
                Err(_) => break,
            }
        }
        self.finish_discard(idx);
    }

    fn finish_discard(&mut self, idx: usize) {
        let mut conn = self.remove(idx);
        if let Some((status, msg)) = conn.pending.take() {
            respond_and_count(&mut conn, status, &msg);
        }
    }

    /// A keep-alive connection handed back by a responder: parse any
    /// pipelined bytes immediately, otherwise rejoin the interest set.
    fn readmit(&mut self, mut conn: Conn) {
        let max_body = self.front.max_body;
        conn.idle_at = Instant::now() + self.front.socket_timeout;
        match try_parse(&mut conn.buf, max_body) {
            Parsed::NeedMore => self.insert(conn),
            Parsed::Invalid(status, msg) => respond_and_count(&mut conn, status, &msg),
            Parsed::TooLarge { content_length, discard } => {
                let msg = format!(
                    "body of {content_length} bytes exceeds the {max_body} byte limit"
                );
                if discard == 0 {
                    respond_and_count(&mut conn, 413, &msg);
                } else {
                    conn.pending = Some((413, msg));
                    conn.discard = discard;
                    self.insert(conn);
                }
            }
            Parsed::Complete(request, leftover) => {
                conn.buf = leftover;
                conn.fault_checked = false;
                self.pool.push(Job { conn, request: *request });
            }
        }
    }

    // ---- timers & teardown ---------------------------------------------

    fn sweep_idle(&mut self) {
        let now = Instant::now();
        for idx in 0..self.slots.len() {
            let expired = self.slots[idx].as_ref().is_some_and(|c| now >= c.idle_at);
            if !expired {
                continue;
            }
            let mut conn = self.remove(idx);
            if let Some((status, msg)) = conn.pending.take() {
                // Stalled mid-oversized-body: the deferred 413 is the
                // more truthful answer than a generic timeout.
                respond_and_count(&mut conn, status, &msg);
            } else if conn.served == 0 || !conn.buf.is_empty() {
                respond_and_count(&mut conn, 408, "request timed out");
            }
            // else: an idle keep-alive connection between requests —
            // closing it silently is normal HTTP/1.1 behaviour.
        }
    }

    fn drain_waker(&mut self) {
        let mut byte = [0u8; 16];
        while self.waker.recv(&mut byte).is_ok() {}
    }

    fn close_all(&mut self) {
        for slot in &mut self.slots {
            if let Some(mut conn) = slot.take() {
                if !conn.buf.is_empty() || conn.served == 0 {
                    // Mid-request (or never-answered) at shutdown: a
                    // best-effort 503 beats a silent close. Not counted —
                    // the request never parsed. Idle keep-alive
                    // connections just close.
                    send_response(
                        &mut conn.stream,
                        503,
                        &[],
                        &error_json("server is shutting down"),
                        false,
                    );
                }
            }
        }
    }
}

/// Write an error response from the event loop (socket still
/// non-blocking — these bodies are far below the send buffer) and
/// count it exactly like the responder path would.
fn respond_and_count(conn: &mut Conn, status: u16, msg: &str) {
    geotorch_telemetry::count!("serve.http.requests", 1);
    count_error_status(status);
    send_response(&mut conn.stream, status, &[], &error_json(msg), false);
}

/// The peer vanished. Mid-request (buffered bytes) or before its first
/// request ever completed, that's a counted disconnect; after a served
/// request with an empty buffer it's just a keep-alive close.
fn close_on_eof(conn: &mut Conn) {
    if !conn.buf.is_empty() || conn.served == 0 {
        geotorch_telemetry::count!("serve.error.disconnect", 1);
        geotorch_telemetry::count!("serve.http.requests", 1);
    }
}
