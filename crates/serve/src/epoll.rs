//! Minimal epoll bindings over raw Linux syscalls — no `libc`, keeping
//! the serving stack zero-dependency like the hand-rolled HTTP layer.
//!
//! Only the four syscalls the event front needs are wrapped
//! (`epoll_create1`, `epoll_ctl`, `epoll_pwait`, `close`); everything
//! else — non-blocking accept/read/write, fd extraction, the wake
//! socket — goes through `std::net`, which already speaks
//! `WouldBlock`. The wrappers use inline assembly because there is no
//! stable `std` syscall interface; the calling conventions are fixed by
//! the kernel ABI:
//!
//! * x86_64: number in `rax`, args in `rdi rsi rdx r10 r8 r9`,
//!   return in `rax`, `rcx`/`r11` clobbered by `syscall`.
//! * aarch64: number in `x8`, args in `x0..x5`, return in `x0`,
//!   via `svc 0`.
//!
//! Errors come back as `-errno` in the return register and are
//! converted to [`std::io::Error`]. `epoll_pwait` is used on both
//! architectures (aarch64 has no plain `epoll_wait`); passing a null
//! sigmask makes it behave identically.

use std::io;
use std::os::fd::RawFd;

pub const EPOLLIN: u32 = 0x001;
/// Peer shut down its writing half — lets the loop notice half-closed
/// connections without waiting for a read to return 0. (`EPOLLERR` and
/// `EPOLLHUP` need no constants: the kernel reports them unsolicited
/// and the loop's next read surfaces the error either way.)
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CLOEXEC: usize = 0x80000;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const CLOSE: usize = 57;
}

/// The kernel's `struct epoll_event`. On x86_64 the kernel declares it
/// packed (12 bytes); everywhere else it has natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    pub events: u32,
    /// Caller-chosen token, echoed back by `epoll_pwait`.
    pub data: u64,
}

#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        options(nostack),
    );
    ret
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// An epoll instance. Level-triggered throughout: a readiness the loop
/// doesn't fully consume is simply reported again, which is the easy
/// semantics to keep correct.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        Ok(Poller {
            epfd: check(ret)? as RawFd,
        })
    }

    /// Watch `fd` for `events`, tagging readiness reports with `token`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some(EpollEvent { events, data: token }))
    }

    /// Stop watching `fd`. The fd stays open — ownership of the socket
    /// never lives here.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        // A non-null event pointer keeps pre-2.6.9 kernels happy and
        // costs nothing on current ones.
        self.ctl(EPOLL_CTL_DEL, fd, Some(EpollEvent::default()))
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let ptr = event
            .as_ref()
            .map_or(std::ptr::null(), |e| e as *const EpollEvent);
        let ret = unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.epfd as usize,
                op as usize,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        };
        check(ret).map(|_| ())
    }

    /// Block until readiness or `timeout_ms` (`-1` = forever). Returns
    /// how many entries of `events` were filled. `EINTR` is retried.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.epfd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0, // null sigmask: plain epoll_wait behaviour
                    8, // sigsetsize, ignored with a null mask
                )
            };
            match check(ret) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { syscall6(nr::CLOSE, self.epfd as usize, 0, 0, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_readable_tcp_data() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().expect("epoll_create1");
        poller
            .add(server_side.as_raw_fd(), 77, EPOLLIN | EPOLLRDHUP)
            .expect("epoll_ctl add");

        let mut events = [EpollEvent::default(); 8];
        // Nothing written yet: a short wait times out empty.
        let n = poller.wait(&mut events, 0).expect("epoll_pwait");
        assert_eq!(n, 0, "no readiness before any bytes are sent");

        client.write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, 1000).expect("epoll_pwait");
        assert_eq!(n, 1, "one readable fd");
        let data = events[0].data;
        let ready = events[0].events;
        assert_eq!(data, 77, "token round-trips");
        assert!(ready & EPOLLIN != 0, "readable, got {ready:#x}");

        poller.del(server_side.as_raw_fd()).expect("epoll_ctl del");
        client.write_all(b"more").unwrap();
        let n = poller.wait(&mut events, 0).expect("epoll_pwait");
        assert_eq!(n, 0, "deleted fds report nothing");
    }
}
