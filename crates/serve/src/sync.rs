//! Delta checkpoint sync between serving nodes.
//!
//! The wire protocol is three HTTP routes on the peer (served by this
//! crate's own front, so any two servers can sync from each other):
//!
//! * `GET /models/<name>/manifest` — the peer's head [`Manifest`] JSON.
//! * `GET /models/<name>/tensors/<idx>@<ver>-<hash>` — one tensor
//!   payload, the exact bytes the peer's [`DeltaStore`] holds (shipped
//!   verbatim so payload files stay byte-identical across nodes).
//! * `POST /models/<name>/sync` — ask a node to pull from a peer.
//!
//! [`sync_store`] drives one pull: fetch the peer's manifest, then let
//! [`DeltaStore::integrate`] decide the winners and fetch only the
//! payloads that are missing locally — O(changed tensors) bytes, not
//! O(checkpoint). Every fetched payload is hash- and shape-verified
//! before the head moves; on any failure the local head (and therefore
//! the serving model) is untouched, and a retry after the fault clears
//! converges.
//!
//! Fault points for chaos tests: `registry.sync.manifest` (manifest
//! fetch), `registry.sync.tensor` (each payload fetch), and
//! `registry.sync.apply` (the integrate window). The swap window has
//! its own hook (`registry.sync.swap`) in the batcher.
//!
//! Bytes pulled over the wire (manifests + payloads) are counted as
//! `registry.sync_bytes`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use geotorch_core::checkpoint::CheckpointError;
use geotorch_core::{DeltaStore, IntegrateReport, Manifest, TensorVersion};

use crate::ServeError;

/// A minimal HTTP/1.1 client for the sync routes of one peer node.
pub struct SyncClient {
    addr: String,
    timeout: Duration,
}

impl SyncClient {
    /// A client for the peer at `addr` (`host:port`) with a 10 s
    /// per-request timeout.
    pub fn new(addr: &str) -> SyncClient {
        SyncClient {
            addr: addr.to_string(),
            timeout: Duration::from_secs(10),
        }
    }

    /// Override the per-request timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> SyncClient {
        self.timeout = timeout;
        self
    }

    /// The peer address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn get(&self, path: &str) -> Result<(u16, Vec<u8>), ServeError> {
        let unavailable =
            |e: std::io::Error| ServeError::Unavailable(format!("peer {}: {e}", self.addr));
        let mut stream = TcpStream::connect(&self.addr).map_err(unavailable)?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        let request =
            format!("GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n", self.addr);
        stream.write_all(request.as_bytes()).map_err(unavailable)?;
        // `Connection: close` means the body ends at EOF — no chunked
        // parsing needed for a same-crate peer.
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(unavailable)?;
        let header_end = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or_else(|| {
                ServeError::Unavailable(format!("peer {}: truncated HTTP response", self.addr))
            })?;
        let head = String::from_utf8_lossy(&raw[..header_end]);
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                ServeError::Unavailable(format!("peer {}: bad status line", self.addr))
            })?;
        Ok((status, raw[header_end + 4..].to_vec()))
    }

    /// Fetch the peer's head manifest for `model`. Chaos hook:
    /// `registry.sync.manifest`.
    pub fn fetch_manifest(&self, model: &str) -> Result<Manifest, ServeError> {
        if let Err(msg) = geotorch_telemetry::fault_point!("registry.sync.manifest") {
            return Err(ServeError::Unavailable(format!(
                "injected manifest-fetch fault: {msg}"
            )));
        }
        let (status, body) = self.get(&format!("/models/{model}/manifest"))?;
        if status != 200 {
            return Err(ServeError::Unavailable(format!(
                "peer {} answered {status} for {model} manifest",
                self.addr
            )));
        }
        geotorch_telemetry::count!("registry.sync_bytes", body.len() as u64);
        let text = std::str::from_utf8(&body).map_err(|e| {
            ServeError::Internal(format!("peer manifest is not utf-8: {e}"))
        })?;
        Manifest::from_json(text)
            .map_err(|e| ServeError::Internal(format!("peer manifest: {e}")))
    }

    /// Fetch one tensor payload (the peer's exact stored bytes). Chaos
    /// hook: `registry.sync.tensor`.
    pub fn fetch_tensor(
        &self,
        model: &str,
        idx: usize,
        entry: &TensorVersion,
    ) -> Result<Vec<u8>, ServeError> {
        if let Err(msg) = geotorch_telemetry::fault_point!("registry.sync.tensor") {
            return Err(ServeError::Unavailable(format!(
                "injected tensor-fetch fault: {msg}"
            )));
        }
        let (status, body) = self.get(&format!(
            "/models/{model}/tensors/{idx}@{}-{}",
            entry.ver, entry.hash
        ))?;
        if status != 200 {
            return Err(ServeError::Unavailable(format!(
                "peer {} answered {status} for {model} tensor {idx}@{}-{}",
                self.addr, entry.ver, entry.hash
            )));
        }
        geotorch_telemetry::count!("registry.sync_bytes", body.len() as u64);
        Ok(body)
    }
}

/// Pull the peer's head into `store`: fetch the manifest, integrate it
/// (fetching only the payloads missing locally), and return what moved.
/// On any failure the local head is untouched — the caller keeps
/// serving the old weights and may simply retry. Chaos hook on the
/// integrate window: `registry.sync.apply`.
pub fn sync_store(
    store: &mut DeltaStore,
    peer: &SyncClient,
    model: &str,
) -> Result<IntegrateReport, ServeError> {
    let remote = peer.fetch_manifest(model)?;
    if let Err(msg) = geotorch_telemetry::fault_point!("registry.sync.apply") {
        return Err(ServeError::Unavailable(format!(
            "injected sync-apply fault: {msg}"
        )));
    }
    store
        .integrate(&remote, |idx, entry| {
            peer.fetch_tensor(model, idx, entry)
                .map_err(|e| CheckpointError::Format(e.to_string()))
        })
        .map_err(|e| ServeError::Internal(format!("integrate from {}: {e}", peer.addr())))
}
