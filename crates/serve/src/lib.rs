//! # geotorch-serve
//!
//! The inference serving subsystem of GeoTorch-RS — the piece that turns
//! a trained checkpoint into something that answers prediction requests,
//! closing the training → deployment gap the geospatial-ML library
//! surveys keep pointing at.
//!
//! Three layers, each usable on its own:
//!
//! * [`registry`] — a [`registry::Registry`] maps model names to
//!   constructors for the existing raster/grid models plus an optional
//!   checkpoint path; loading validates the checkpoint header (model
//!   name, tensor shapes) and flips the model to eval mode.
//! * [`batcher`] — a dynamic micro-batching scheduler. Each model gets a
//!   dedicated owner thread (the autograd [`Var`] graph is deliberately
//!   single-threaded, so the model never crosses threads); concurrent
//!   requests queue up to `max_batch`/`max_wait_ms`, are stacked into one
//!   batched no-grad forward on the configured device, and the rows of
//!   the output are scattered back to the callers.
//! * [`http`] — a hand-rolled HTTP/1.1 layer with JSON bodies: `POST
//!   /predict/<model>`, `GET /healthz`, and `GET /metrics` (a
//!   `geotorch-telemetry` snapshot including the `serve.*` stats). The
//!   front is event-driven on Linux: one epoll readiness loop (raw
//!   syscalls, still zero-dep) owns every idle or half-read connection
//!   with incremental parsing, keep-alive, and per-connection idle
//!   timers, while a responder pool runs the blocking model calls — so
//!   a slow client costs a buffer, not a thread. Other targets fall
//!   back to a blocking accept pool with the same semantics.
//!
//! Models can additionally be sharded across N replica threads
//! ([`BatchConfig::replicas`]) with least-loaded routing, since
//! checkpointed weights are immutable after load.
//!
//! ```no_run
//! use geotorch_serve::{Registry, ServeConfig, Server};
//! use geotorch_models::raster::SatCnn;
//! use rand::SeedableRng;
//!
//! let mut registry = Registry::new();
//! registry.register_classifier("satcnn", None, || {
//!     let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//!     SatCnn::new(3, 32, 32, 10, &mut rng)
//! });
//! let server = Server::start("127.0.0.1:0", registry, ServeConfig::default()).unwrap();
//! println!("serving on {}", server.addr());
//! ```

#![warn(missing_docs)]

pub mod batcher;
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod epoll;
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod front;
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
#[path = "front_fallback.rs"]
mod front;
pub mod http;
pub mod registry;
pub mod sync;
pub mod tiling;

pub use batcher::{BatchConfig, ModelClient, ModelWorker};
pub use http::{ServeConfig, Server};
pub use registry::Registry;
pub use sync::{sync_store, SyncClient};
pub use tiling::{run_mosaic, MosaicStats, TileConfig};

use geotorch_models::{GridInput, GridModel, RasterClassifier, Segmenter};
use geotorch_nn::{Module, Var};

/// A model as the serving layer sees it: one batched tensor in, one
/// batched tensor out, with the leading axis as the batch axis on both
/// sides. The registry adapts the three model families of
/// `geotorch-models` onto this.
pub trait ServeModel: Module {
    /// Run a batched forward pass (`[B, ...] → [B, ...]`).
    fn predict(&self, batch: &Var) -> Var;
}

/// Anything that can go wrong between a request arriving and a
/// prediction leaving. String-based so it can cross the channel between
/// HTTP workers and model owner threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No model registered under the requested name.
    ModelNotFound(String),
    /// The model could not be constructed or its checkpoint refused to
    /// load (wrong architecture, wrong name, corrupt file).
    ModelLoad(String),
    /// The request body was not a valid tensor payload.
    BadRequest(String),
    /// The request body exceeds the configured size limit (HTTP 413).
    PayloadTooLarge(String),
    /// Shed by admission control: the model's queue of
    /// admitted-but-unanswered requests is at its bound (HTTP 429).
    Overloaded(String),
    /// The request's deadline expired before a prediction was produced
    /// (HTTP 504). The request never occupies a batch slot once expired.
    DeadlineExceeded(String),
    /// The worker for this model is draining, has shut down, or died
    /// (HTTP 503).
    Unavailable(String),
    /// The forward pass panicked or the worker dropped the request.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ModelNotFound(name) => write!(f, "no model named `{name}`"),
            ServeError::ModelLoad(msg) => write!(f, "model failed to load: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::PayloadTooLarge(msg) => write!(f, "payload too large: {msg}"),
            ServeError::Overloaded(msg) => write!(f, "overloaded: {msg}"),
            ServeError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            ServeError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// [`ServeModel`] adapter for a [`RasterClassifier`] (served without the
/// optional handcrafted-feature input).
pub struct ClassifierServe<M: RasterClassifier>(pub M);

impl<M: RasterClassifier> Module for ClassifierServe<M> {
    fn parameters(&self) -> Vec<Var> {
        self.0.parameters()
    }

    fn set_training(&self, training: bool) {
        self.0.set_training(training);
    }
}

impl<M: RasterClassifier> ServeModel for ClassifierServe<M> {
    fn predict(&self, batch: &Var) -> Var {
        self.0.forward(batch, None)
    }
}

/// [`ServeModel`] adapter for a [`Segmenter`].
pub struct SegmenterServe<M: Segmenter>(pub M);

impl<M: Segmenter> Module for SegmenterServe<M> {
    fn parameters(&self) -> Vec<Var> {
        self.0.parameters()
    }

    fn set_training(&self, training: bool) {
        self.0.set_training(training);
    }
}

impl<M: Segmenter> ServeModel for SegmenterServe<M> {
    fn predict(&self, batch: &Var) -> Var {
        self.0.forward(batch)
    }
}

/// [`ServeModel`] adapter for a [`GridModel`] served in the basic
/// (single-frame `[B, C, H, W]`) representation.
pub struct GridServe<M: GridModel>(pub M);

impl<M: GridModel> Module for GridServe<M> {
    fn parameters(&self) -> Vec<Var> {
        self.0.parameters()
    }

    fn set_training(&self, training: bool) {
        self.0.set_training(training);
    }
}

impl<M: GridModel> ServeModel for GridServe<M> {
    fn predict(&self, batch: &Var) -> Var {
        self.0.forward(&GridInput::Basic(batch.clone()))
    }
}
