//! Pull-based batch streaming: the loader layer of the
//! `DataSource → Loader → Trainer` seam.
//!
//! [`BatchStream`] is the one interface trainers consume: a fallible
//! pull of the next `(features, labels)` batch. Three implementations
//! cover the pipeline:
//!
//! - [`FrameBatchStream`] — over an in-memory [`FormattedFrame`]; the
//!   streaming twin of [`RowTransformer::all_batches`].
//! - [`SpillBatchStream`] — over a [`SpillStore`] of spilled partitions:
//!   reads one partition at a time (recycled scratch buffer), formats
//!   it, batches it, drops it. Peak memory is one partition + one batch,
//!   independent of dataset size.
//! - [`PrefetchLoader`] — wraps any stream in a background thread with a
//!   bounded double-buffer queue, so the converter formats shard N+1
//!   while the trainer runs shard N. Queue occupancy is exported as the
//!   `loader.prefetch_depth` gauge; the producer carries the
//!   `loader.prefetch` fault point for chaos testing.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TryRecvError};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;

use geotorch_dataframe::{DfError, SpillStore};
use geotorch_tensor::Tensor;

use crate::{DfFormatter, FormattedFrame, RowTransformer};

/// Why a batch stream stopped producing.
#[derive(Debug, Clone, PartialEq)]
pub enum LoaderError {
    /// The underlying dataframe layer failed (spill read, format).
    Df(DfError),
    /// The prefetch thread failed (injected fault or panic).
    Prefetch(String),
}

impl std::fmt::Display for LoaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoaderError::Df(e) => write!(f, "dataframe: {e}"),
            LoaderError::Prefetch(msg) => write!(f, "prefetch: {msg}"),
        }
    }
}

impl std::error::Error for LoaderError {}

impl From<DfError> for LoaderError {
    fn from(e: DfError) -> LoaderError {
        LoaderError::Df(e)
    }
}

/// A pull-based source of `(features, labels)` training batches.
///
/// `Ok(None)` is end-of-stream; an `Err` is sticky — the epoch that hit
/// it must be abandoned and the stream rebuilt.
pub trait BatchStream: Send {
    /// The next batch, `Ok(None)` at end of stream.
    fn next_batch(&mut self) -> Result<Option<(Tensor, Tensor)>, LoaderError>;

    /// Total rows this stream will yield, when known up front (used for
    /// throughput accounting).
    fn total_rows(&self) -> Option<usize> {
        None
    }
}

// ------------------------------------------------------------- frame

/// Streams an in-memory [`FormattedFrame`] batch by batch — identical
/// batches, in identical order, to [`RowTransformer::all_batches`].
pub struct FrameBatchStream {
    rt: Arc<RowTransformer>,
    frame: Arc<FormattedFrame>,
    part: usize,
    row: usize,
}

impl FrameBatchStream {
    /// Stream `frame` through `rt`'s batch size and transform.
    pub fn new(rt: Arc<RowTransformer>, frame: Arc<FormattedFrame>) -> FrameBatchStream {
        FrameBatchStream {
            rt,
            frame,
            part: 0,
            row: 0,
        }
    }
}

impl BatchStream for FrameBatchStream {
    fn next_batch(&mut self) -> Result<Option<(Tensor, Tensor)>, LoaderError> {
        while self.part < self.frame.partitions.len() {
            let rows = self.frame.partitions[self.part].rows;
            if self.row >= rows {
                self.part += 1;
                self.row = 0;
                continue;
            }
            let end = (self.row + self.rt.batch_size()).min(rows);
            let batch = self.rt.build_batch(&self.frame, self.part, self.row, end);
            self.row = end;
            return Ok(Some(batch));
        }
        Ok(None)
    }

    fn total_rows(&self) -> Option<usize> {
        Some(self.frame.num_rows())
    }
}

// ------------------------------------------------------------- spill

/// Streams spilled partitions: read one partition back (reusing a
/// scratch buffer), format it, batch it, drop it, move on.
pub struct SpillBatchStream {
    store: Arc<SpillStore>,
    formatter: DfFormatter,
    rt: Arc<RowTransformer>,
    scratch: Vec<u8>,
    current: Option<FormattedFrame>,
    row: usize,
    next_part: usize,
}

impl SpillBatchStream {
    /// Stream every partition of `store`, formatted by `formatter`,
    /// batched by `rt`.
    pub fn new(
        store: Arc<SpillStore>,
        formatter: DfFormatter,
        rt: Arc<RowTransformer>,
    ) -> SpillBatchStream {
        SpillBatchStream {
            store,
            formatter,
            rt,
            scratch: Vec::new(),
            current: None,
            row: 0,
            next_part: 0,
        }
    }
}

impl BatchStream for SpillBatchStream {
    fn next_batch(&mut self) -> Result<Option<(Tensor, Tensor)>, LoaderError> {
        loop {
            if let Some(frame) = &self.current {
                let rows = frame.partitions[0].rows;
                if self.row < rows {
                    let end = (self.row + self.rt.batch_size()).min(rows);
                    let batch = self.rt.build_batch(frame, 0, self.row, end);
                    self.row = end;
                    return Ok(Some(batch));
                }
                self.current = None;
            }
            if self.next_part >= self.store.len() {
                return Ok(None);
            }
            let cols = self.store.read_with(self.next_part, &mut self.scratch)?;
            let part = self
                .formatter
                .format_partition(self.store.schema(), &cols)?;
            self.current = Some(FormattedFrame {
                partitions: vec![part],
                feature_shape: self.formatter.feature_shape().to_vec(),
                label_shape: self.formatter.label_shape().to_vec(),
            });
            self.row = 0;
            self.next_part += 1;
        }
    }

    fn total_rows(&self) -> Option<usize> {
        Some(self.store.total_rows())
    }
}

// ---------------------------------------------------------- prefetch

/// Batches formatted ahead of the consumer, queued but not yet pulled.
static PREFETCH_QUEUED: AtomicU64 = AtomicU64::new(0);
static PREFETCH_GAUGE: Once = Once::new();

/// Double-buffered background prefetcher: a producer thread pulls from
/// the inner stream into a bounded queue of `depth` batches (2 = classic
/// double buffering) while the consumer trains on the previous batch.
///
/// Errors and panics in the producer surface as [`LoaderError`] from
/// [`BatchStream::next_batch`] — never a deadlock: the queue is bounded,
/// the producer exits on send failure, and dropping the loader stops and
/// joins the thread.
pub struct PrefetchLoader {
    rx: Option<Receiver<Result<(Tensor, Tensor), LoaderError>>>,
    handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    rows: Option<usize>,
    finished: bool,
}

impl PrefetchLoader {
    /// Wrap `inner`, formatting up to `depth` batches ahead.
    pub fn new(mut inner: Box<dyn BatchStream>, depth: usize) -> PrefetchLoader {
        assert!(depth >= 1, "prefetch depth must be at least 1");
        PREFETCH_GAUGE.call_once(|| {
            geotorch_telemetry::register_gauge("loader.prefetch_depth", || {
                PREFETCH_QUEUED.load(Ordering::Relaxed)
            });
        });
        let rows = inner.total_rows();
        let (tx, rx) = sync_channel(depth);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("geotorch-prefetch".into())
            .spawn(move || loop {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                // The fault point sits inside the catch_unwind so an
                // injected *panic* also surfaces as a clean error on the
                // consumer side instead of a silently truncated stream.
                let pulled = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    geotorch_telemetry::fault_point!("loader.prefetch")
                        .map_err(LoaderError::Prefetch)?;
                    inner.next_batch()
                }));
                match pulled {
                    Ok(Ok(Some(batch))) => {
                        PREFETCH_QUEUED.fetch_add(1, Ordering::Relaxed);
                        if tx.send(Ok(batch)).is_err() {
                            // Consumer went away; the batch died with the
                            // channel.
                            PREFETCH_QUEUED.fetch_sub(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    Ok(Ok(None)) => break,
                    Ok(Err(e)) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                    Err(panic) => {
                        let msg = panic_message(&panic);
                        let _ = tx.send(Err(LoaderError::Prefetch(format!(
                            "prefetch thread panicked: {msg}"
                        ))));
                        break;
                    }
                }
            })
            .expect("spawn prefetch thread");
        PrefetchLoader {
            rx: Some(rx),
            handle: Some(handle),
            stop,
            rows,
            finished: false,
        }
    }
}

impl BatchStream for PrefetchLoader {
    fn next_batch(&mut self) -> Result<Option<(Tensor, Tensor)>, LoaderError> {
        if self.finished {
            return Ok(None);
        }
        match self.rx.as_ref().expect("receiver lives until drop").recv() {
            Ok(Ok(batch)) => {
                PREFETCH_QUEUED.fetch_sub(1, Ordering::Relaxed);
                Ok(Some(batch))
            }
            Ok(Err(e)) => {
                self.finished = true;
                Err(e)
            }
            // Producer exited after the last batch was drained.
            Err(_) => {
                self.finished = true;
                Ok(None)
            }
        }
    }

    fn total_rows(&self) -> Option<usize> {
        self.rows
    }
}

impl Drop for PrefetchLoader {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(rx) = self.rx.take() {
            // Drain so a producer blocked on the full queue wakes up and
            // sees the stop flag; every undelivered batch is accounted
            // off the gauge.
            loop {
                match rx.try_recv() {
                    Ok(Ok(_)) => {
                        PREFETCH_QUEUED.fetch_sub(1, Ordering::Relaxed);
                    }
                    Ok(Err(_)) => {}
                    Err(TryRecvError::Empty) => {
                        if self
                            .handle
                            .as_ref()
                            .map(|h| h.is_finished())
                            .unwrap_or(true)
                        {
                            // One final sweep: the producer may have
                            // queued between our try_recv and its exit.
                            while let Ok(item) = rx.try_recv() {
                                if item.is_ok() {
                                    PREFETCH_QUEUED.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            break;
                        }
                        std::thread::yield_now();
                    }
                    Err(TryRecvError::Disconnected) => break,
                }
            }
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotorch_dataframe::{Column, DataFrame};

    fn frame(rows: usize, parts: usize) -> (Arc<RowTransformer>, Arc<FormattedFrame>) {
        let a: Vec<f64> = (0..rows).map(|i| i as f64).collect();
        let y: Vec<i64> = (0..rows).map(|i| (i % 2) as i64).collect();
        let df = DataFrame::from_columns(vec![
            ("a".into(), Column::F64(a)),
            ("y".into(), Column::I64(y)),
        ])
        .unwrap()
        .repartition(parts)
        .unwrap();
        let fmt = DfFormatter::for_classification(&["a"], &[1], "y").unwrap();
        (
            Arc::new(RowTransformer::new(4)),
            Arc::new(fmt.format(&df).unwrap()),
        )
    }

    fn drain(stream: &mut dyn BatchStream) -> Vec<(Tensor, Tensor)> {
        let mut out = Vec::new();
        while let Some(b) = stream.next_batch().unwrap() {
            out.push(b);
        }
        out
    }

    #[test]
    fn frame_stream_matches_all_batches() {
        let (rt, frame) = frame(22, 3);
        let mut stream = FrameBatchStream::new(Arc::clone(&rt), Arc::clone(&frame));
        let streamed = drain(&mut stream);
        let all = rt.all_batches(&frame);
        assert_eq!(streamed.len(), all.len());
        for ((sx, sy), (ax, ay)) in streamed.iter().zip(&all) {
            assert_eq!(sx, ax);
            assert_eq!(sy, ay);
        }
        assert_eq!(stream.total_rows(), Some(22));
        // Exhausted stream stays exhausted.
        assert!(stream.next_batch().unwrap().is_none());
    }

    #[test]
    fn spill_stream_matches_in_memory() {
        let rows = 50;
        let a: Vec<f64> = (0..rows).map(|i| i as f64 * 0.5).collect();
        let y: Vec<i64> = (0..rows).map(|i| (i % 3) as i64).collect();
        let df = DataFrame::from_columns(vec![
            ("a".into(), Column::F64(a)),
            ("y".into(), Column::I64(y)),
        ])
        .unwrap()
        .repartition(4)
        .unwrap();
        let dir = std::env::temp_dir().join(format!(
            "geotorch-stream-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(SpillStore::from_frame(&dir, &df).unwrap());
        let fmt = DfFormatter::for_classification(&["a"], &[1], "y").unwrap();
        let rt = Arc::new(RowTransformer::new(8));
        let in_memory = rt.all_batches(&fmt.format(&df).unwrap());
        let mut stream = SpillBatchStream::new(store, fmt, Arc::clone(&rt));
        assert_eq!(stream.total_rows(), Some(rows));
        let streamed = drain(&mut stream);
        assert_eq!(streamed.len(), in_memory.len());
        for ((sx, sy), (ax, ay)) in streamed.iter().zip(&in_memory) {
            assert_eq!(sx, ax);
            assert_eq!(sy, ay);
        }
    }

    #[test]
    fn prefetch_preserves_order_and_contents() {
        let (rt, frame) = frame(37, 2);
        let direct = drain(&mut FrameBatchStream::new(
            Arc::clone(&rt),
            Arc::clone(&frame),
        ));
        let mut loader =
            PrefetchLoader::new(Box::new(FrameBatchStream::new(rt, frame)), 2);
        let prefetched = drain(&mut loader);
        assert_eq!(direct.len(), prefetched.len());
        for ((dx, dy), (px, py)) in direct.iter().zip(&prefetched) {
            assert_eq!(dx, px);
            assert_eq!(dy, py);
        }
    }

    #[test]
    fn prefetch_drop_mid_stream_does_not_hang() {
        let (rt, frame) = frame(1000, 1);
        let mut loader =
            PrefetchLoader::new(Box::new(FrameBatchStream::new(rt, frame)), 2);
        let _ = loader.next_batch().unwrap();
        drop(loader); // producer still has hundreds of batches queued up
        assert_eq!(PREFETCH_QUEUED.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn prefetch_propagates_inner_panic_as_error() {
        struct Bomb(usize);
        impl BatchStream for Bomb {
            fn next_batch(&mut self) -> Result<Option<(Tensor, Tensor)>, LoaderError> {
                self.0 += 1;
                if self.0 > 2 {
                    panic!("boom at batch 3");
                }
                Ok(Some((Tensor::zeros(&[1, 1]), Tensor::zeros(&[1, 1]))))
            }
        }
        let mut loader = PrefetchLoader::new(Box::new(Bomb(0)), 2);
        let mut ok = 0;
        let err = loop {
            match loader.next_batch() {
                Ok(Some(_)) => ok += 1,
                Ok(None) => panic!("expected an error, got clean end"),
                Err(e) => break e,
            }
        };
        assert_eq!(ok, 2);
        assert!(matches!(&err, LoaderError::Prefetch(m) if m.contains("boom")));
        // Sticky end after the error.
        assert!(loader.next_batch().unwrap().is_none());
    }
}
