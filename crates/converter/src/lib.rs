//! # geotorch-converter
//!
//! The **DFtoTorch Converter** (§III-C of the paper): maps preprocessed
//! DataFrames into trainable tensor batches *without collecting the whole
//! DataFrame onto one node*.
//!
//! The paper's Figure 7 splits the converter into two stages, mirrored
//! here:
//!
//! 1. [`DfFormatter`] — per-partition, maps each row into flat feature /
//!    label arrays shaped for the target application (classification,
//!    segmentation, or spatiotemporal prediction). The output
//!    [`FormattedFrame`] stays partitioned.
//! 2. [`RowTransformer`] — streams the formatted partitions as batched
//!    `(features, labels)` tensors, applying an optional user
//!    [`TransformSpec`] per batch (the Petastorm role).
//!
//! The naive alternative the paper warns about — concatenate everything,
//! then slice — is provided as [`collect_then_batch`] for the ablation
//! benchmark; it produces identical batches at a higher peak-memory cost.

#![warn(missing_docs)]

pub mod stream;

use geotorch_dataframe::{exec, Column, DataFrame, DfError, DfResult, Schema};
use geotorch_tensor::{parallel_map, Tensor, PARALLEL_THRESHOLD};

pub use stream::{
    BatchStream, FrameBatchStream, LoaderError, PrefetchLoader, SpillBatchStream,
};

/// Per-partition formatted rows: flat row-major feature and label
/// buffers.
#[derive(Debug, Clone)]
pub struct FormattedPartition {
    /// `rows × feature_len` values.
    pub features: Vec<f32>,
    /// `rows × label_len` values.
    pub labels: Vec<f32>,
    /// Row count.
    pub rows: usize,
}

/// The formatter's output: still partitioned, plus the tensor shapes a
/// single row maps to.
#[derive(Debug, Clone)]
pub struct FormattedFrame {
    /// Formatted partitions in input order.
    pub partitions: Vec<FormattedPartition>,
    /// Shape of one feature row (without the batch axis).
    pub feature_shape: Vec<usize>,
    /// Shape of one label row (without the batch axis).
    pub label_shape: Vec<usize>,
}

impl FormattedFrame {
    /// Total rows across partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.rows).sum()
    }
}

/// Stage 1: row → array mapping, configured per application domain.
#[derive(Debug, Clone)]
pub struct DfFormatter {
    feature_columns: Vec<String>,
    label_columns: Vec<String>,
    feature_shape: Vec<usize>,
    label_shape: Vec<usize>,
}

impl DfFormatter {
    /// Spatiotemporal prediction: numeric feature columns reshaped to
    /// `feature_shape`, numeric label columns to `label_shape`.
    ///
    /// # Errors
    /// If shapes do not match the column counts.
    pub fn for_prediction(
        feature_columns: &[&str],
        feature_shape: &[usize],
        label_columns: &[&str],
        label_shape: &[usize],
    ) -> DfResult<DfFormatter> {
        let f_len: usize = feature_shape.iter().product();
        let l_len: usize = label_shape.iter().product();
        if f_len != feature_columns.len() {
            return Err(DfError::InvalidArgument(format!(
                "feature shape {feature_shape:?} needs {f_len} columns, got {}",
                feature_columns.len()
            )));
        }
        if l_len != label_columns.len() {
            return Err(DfError::InvalidArgument(format!(
                "label shape {label_shape:?} needs {l_len} columns, got {}",
                label_columns.len()
            )));
        }
        Ok(DfFormatter {
            feature_columns: feature_columns.iter().map(|s| s.to_string()).collect(),
            label_columns: label_columns.iter().map(|s| s.to_string()).collect(),
            feature_shape: feature_shape.to_vec(),
            label_shape: label_shape.to_vec(),
        })
    }

    /// Classification: features as above; a single label column holding
    /// the class index.
    pub fn for_classification(
        feature_columns: &[&str],
        feature_shape: &[usize],
        label_column: &str,
    ) -> DfResult<DfFormatter> {
        Self::for_prediction(feature_columns, feature_shape, &[label_column], &[1])
    }

    /// Run the mapping partition-parallel; the result stays partitioned
    /// (no master-node collect).
    pub fn format(&self, df: &DataFrame) -> DfResult<FormattedFrame> {
        let schema = df.schema();
        let results: Vec<DfResult<FormattedPartition>> =
            exec::par_map(df.partitions(), |part| self.format_partition(schema, part));
        Ok(FormattedFrame {
            partitions: results.into_iter().collect::<DfResult<Vec<_>>>()?,
            feature_shape: self.feature_shape.clone(),
            label_shape: self.label_shape.clone(),
        })
    }

    /// Format a single partition — the unit of work the out-of-core
    /// streaming loader calls per spilled partition.
    pub fn format_partition(
        &self,
        schema: &Schema,
        part: &[Column],
    ) -> DfResult<FormattedPartition> {
        let f_idx: Vec<usize> = self
            .feature_columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<DfResult<_>>()?;
        let l_idx: Vec<usize> = self
            .label_columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<DfResult<_>>()?;
        let rows = part.first().map_or(0, Column::len);
        let mut features = Vec::with_capacity(rows * f_idx.len());
        let mut labels = Vec::with_capacity(rows * l_idx.len());
        for row in 0..rows {
            for &i in &f_idx {
                features.push(numeric_at(part, i, row, &self.feature_columns)?);
            }
            for &i in &l_idx {
                labels.push(numeric_at(part, i, row, &self.label_columns)?);
            }
        }
        Ok(FormattedPartition {
            features,
            labels,
            rows,
        })
    }

    /// Shape of one feature row (without the batch axis).
    pub fn feature_shape(&self) -> &[usize] {
        &self.feature_shape
    }

    /// Shape of one label row (without the batch axis).
    pub fn label_shape(&self) -> &[usize] {
        &self.label_shape
    }
}

fn numeric_at(part: &[Column], idx: usize, row: usize, names: &[String]) -> DfResult<f32> {
    part[idx]
        .value(row)
        .as_f64()
        .map(|v| v as f32)
        .ok_or_else(|| DfError::TypeMismatch {
            column: names.get(idx).cloned().unwrap_or_default(),
            expected: "numeric",
            found: part[idx].dtype().name(),
        })
}

/// A per-batch tensor transform (normalisation, augmentation, …).
pub type TransformSpec = Box<dyn Fn(Tensor) -> Tensor + Send + Sync>;

/// Stage 2: stream formatted partitions as batched tensors.
pub struct RowTransformer {
    batch_size: usize,
    transform: Option<TransformSpec>,
}

impl RowTransformer {
    /// Batches of `batch_size` rows (final partial batch kept).
    pub fn new(batch_size: usize) -> RowTransformer {
        assert!(batch_size > 0, "batch_size must be positive");
        RowTransformer {
            batch_size,
            transform: None,
        }
    }

    /// Apply `spec` to every feature batch.
    pub fn with_transform(mut self, spec: TransformSpec) -> RowTransformer {
        self.transform = Some(spec);
        self
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Build the `(features, labels)` batch for rows `[start, end)` of
    /// partition `pi` — the single construction path shared by
    /// [`RowTransformer::batches`], [`RowTransformer::all_batches`], and
    /// the [`stream::BatchStream`] implementations, so every consumer
    /// sees bit-identical batches.
    pub(crate) fn build_batch(
        &self,
        frame: &FormattedFrame,
        pi: usize,
        start: usize,
        end: usize,
    ) -> (Tensor, Tensor) {
        let f_len: usize = frame.feature_shape.iter().product();
        let l_len: usize = frame.label_shape.iter().product();
        let part = &frame.partitions[pi];
        let b = end - start;
        let mut f_shape = vec![b];
        f_shape.extend_from_slice(&frame.feature_shape);
        let mut l_shape = vec![b];
        l_shape.extend_from_slice(&frame.label_shape);
        // from_slice fills a pooled buffer, so steady-state batch
        // staging recycles instead of growing the heap.
        let mut features =
            Tensor::from_slice(&part.features[start * f_len..end * f_len], &f_shape);
        if let Some(t) = &self.transform {
            features = t(features);
        }
        let labels = Tensor::from_slice(&part.labels[start * l_len..end * l_len], &l_shape);
        geotorch_telemetry::count!("converter.batches_built", 1);
        (features, labels)
    }

    /// Batch spans as `(partition, row start, row end)`; batches never
    /// cross partition boundaries, so each partition can live on its own
    /// worker in a distributed deployment.
    fn spans(&self, frame: &FormattedFrame) -> Vec<(usize, usize, usize)> {
        let mut spans = Vec::new();
        for (pi, part) in frame.partitions.iter().enumerate() {
            let mut start = 0;
            while start < part.rows {
                let end = (start + self.batch_size).min(part.rows);
                spans.push((pi, start, end));
                start = end;
            }
        }
        spans
    }

    /// Stream `(features [B, ..], labels [B, ..])` batches.
    pub fn batches<'a>(
        &'a self,
        frame: &'a FormattedFrame,
    ) -> impl Iterator<Item = (Tensor, Tensor)> + 'a {
        self.spans(frame)
            .into_iter()
            .map(move |(pi, start, end)| self.build_batch(frame, pi, start, end))
    }

    /// Materialise every batch at once — a compatibility wrapper over the
    /// same span/build path the streaming loaders use. Training and
    /// evaluation should prefer a [`stream::BatchStream`] (peak memory
    /// stays one batch instead of the whole dataset); this bulk form
    /// remains for tests, benchmarks, and small frames, and fans out over
    /// the tensor device worker pool past `PARALLEL_THRESHOLD` elements.
    pub fn all_batches(&self, frame: &FormattedFrame) -> Vec<(Tensor, Tensor)> {
        let _t = geotorch_telemetry::scope!("converter.all_batches");
        let f_len: usize = frame.feature_shape.iter().product();
        let l_len: usize = frame.label_shape.iter().product();
        let spans = self.spans(frame);
        if frame.num_rows() * (f_len + l_len) >= PARALLEL_THRESHOLD {
            parallel_map(spans.len(), |i| {
                let (pi, start, end) = spans[i];
                self.build_batch(frame, pi, start, end)
            })
        } else {
            spans
                .into_iter()
                .map(|(pi, start, end)| self.build_batch(frame, pi, start, end))
                .collect()
        }
    }
}

/// The naive strategy of §III-C: concatenate every partition into one
/// array on the "master", then batch. Identical batches to
/// [`RowTransformer::batches`] over a single-partition frame, but peak
/// memory includes the full materialised copy. Kept for the ablation
/// benchmark.
pub fn collect_then_batch(
    frame: &FormattedFrame,
    batch_size: usize,
) -> Vec<(Tensor, Tensor)> {
    let mut all_features = Vec::new();
    let mut all_labels = Vec::new();
    let mut rows = 0;
    for p in &frame.partitions {
        all_features.extend_from_slice(&p.features);
        all_labels.extend_from_slice(&p.labels);
        rows += p.rows;
    }
    let collected = FormattedFrame {
        partitions: vec![FormattedPartition {
            features: all_features,
            labels: all_labels,
            rows,
        }],
        feature_shape: frame.feature_shape.clone(),
        label_shape: frame.label_shape.clone(),
    };
    RowTransformer::new(batch_size).batches(&collected).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            ("a".into(), Column::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0])),
            ("b".into(), Column::F64(vec![10.0, 20.0, 30.0, 40.0, 50.0])),
            ("y".into(), Column::I64(vec![0, 1, 0, 1, 1])),
        ])
        .unwrap()
    }

    #[test]
    fn formatter_shapes_rows() {
        let fmt = DfFormatter::for_prediction(&["a", "b"], &[2], &["y"], &[1]).unwrap();
        let frame = fmt.format(&df()).unwrap();
        assert_eq!(frame.num_rows(), 5);
        assert_eq!(frame.feature_shape, vec![2]);
        assert_eq!(frame.partitions.len(), 1);
        assert_eq!(frame.partitions[0].features[..4], [1.0, 10.0, 2.0, 20.0]);
    }

    #[test]
    fn formatter_stays_partitioned() {
        let fmt = DfFormatter::for_classification(&["a", "b"], &[2], "y").unwrap();
        let frame = fmt.format(&df().repartition(3).unwrap()).unwrap();
        assert!(frame.partitions.len() > 1, "no master-node collect");
        assert_eq!(frame.num_rows(), 5);
    }

    #[test]
    fn formatter_validates_shapes_and_columns() {
        assert!(DfFormatter::for_prediction(&["a"], &[2], &["y"], &[1]).is_err());
        assert!(DfFormatter::for_prediction(&["a"], &[1], &["y", "a"], &[1]).is_err());
        let fmt = DfFormatter::for_classification(&["missing"], &[1], "y").unwrap();
        assert!(fmt.format(&df()).is_err());
        let bad_type = DataFrame::from_columns(vec![
            ("a".into(), Column::Str(vec!["x".into()])),
            ("y".into(), Column::I64(vec![0])),
        ])
        .unwrap();
        let fmt = DfFormatter::for_classification(&["a"], &[1], "y").unwrap();
        assert!(fmt.format(&bad_type).is_err());
    }

    #[test]
    fn transformer_batches_cover_all_rows() {
        let fmt = DfFormatter::for_classification(&["a", "b"], &[2], "y").unwrap();
        let frame = fmt.format(&df()).unwrap();
        let rt = RowTransformer::new(2);
        let batches: Vec<_> = rt.batches(&frame).collect();
        assert_eq!(batches.len(), 3); // 2 + 2 + 1
        assert_eq!(batches[0].0.shape(), &[2, 2]);
        assert_eq!(batches[2].0.shape(), &[1, 2]);
        let total: usize = batches.iter().map(|(x, _)| x.shape()[0]).sum();
        assert_eq!(total, 5);
        // Labels survive the trip.
        assert_eq!(batches[0].1.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn transform_spec_applies_per_batch() {
        let fmt = DfFormatter::for_classification(&["a"], &[1], "y").unwrap();
        let frame = fmt.format(&df()).unwrap();
        let rt = RowTransformer::new(10)
            .with_transform(Box::new(|t| t.mul_scalar(0.1)));
        let (x, _) = rt.batches(&frame).next().unwrap();
        assert!(x.allclose(
            &Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4, 0.5], &[5, 1]),
            1e-6
        ));
    }

    #[test]
    fn streaming_equals_collect_then_batch() {
        let fmt = DfFormatter::for_classification(&["a", "b"], &[2], "y").unwrap();
        // Single partition so batch boundaries coincide.
        let frame = fmt.format(&df()).unwrap();
        let streamed: Vec<_> = RowTransformer::new(2).batches(&frame).collect();
        let collected = collect_then_batch(&frame, 2);
        assert_eq!(streamed.len(), collected.len());
        for ((sx, sy), (cx, cy)) in streamed.iter().zip(&collected) {
            assert_eq!(sx, cx);
            assert_eq!(sy, cy);
        }
    }

    #[test]
    fn multidimensional_feature_shape() {
        let fmt =
            DfFormatter::for_prediction(&["a", "b"], &[1, 2, 1], &["y"], &[1, 1]).unwrap();
        let frame = fmt.format(&df()).unwrap();
        let (x, y) = RowTransformer::new(3).batches(&frame).next().unwrap();
        assert_eq!(x.shape(), &[3, 1, 2, 1]);
        assert_eq!(y.shape(), &[3, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_panics() {
        RowTransformer::new(0);
    }

    #[test]
    fn all_batches_matches_streaming_on_parallel_device() {
        // Large enough to clear PARALLEL_THRESHOLD and exercise the pool.
        let n = 4096;
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
        let y: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
        let df = DataFrame::from_columns(vec![
            ("a".into(), Column::F64(a)),
            ("b".into(), Column::F64(b)),
            ("y".into(), Column::I64(y)),
        ])
        .unwrap()
        .repartition(4)
        .unwrap();
        let fmt = DfFormatter::for_classification(&["a", "b"], &[2], "y").unwrap();
        let frame = fmt.format(&df).unwrap();
        let rt = RowTransformer::new(64).with_transform(Box::new(|t| t.mul_scalar(0.5)));
        let streamed: Vec<_> = rt.batches(&frame).collect();
        let all = geotorch_tensor::with_device(geotorch_tensor::Device::parallel(), || {
            rt.all_batches(&frame)
        });
        assert_eq!(streamed.len(), all.len());
        for ((sx, sy), (ax, ay)) in streamed.iter().zip(&all) {
            assert_eq!(sx, ax);
            assert_eq!(sy, ay);
        }
    }
}
