//! Weather forecasting with ConvLSTM on a WeatherBench-style temperature
//! grid (Table V of the paper), using the sequential representation
//! (Listing 3).
//!
//! ```sh
//! cargo run --release --example weather_forecasting
//! ```

use geotorchai::prelude::*;
use rand::SeedableRng;

fn main() {
    // Ten days of hourly temperature on a reduced 8x16 global grid (the
    // paper's grid is 32x64; the dynamics are scale-free).
    let raw = geotorchai::datasets::synth::WeatherField::new(
        geotorchai::datasets::synth::WeatherVariable::Temperature,
        11,
    )
    .with_grid(8, 16)
    .generate(10 * 24);
    let mut dataset = geotorchai::datasets::grid::GridDatasetBuilder::new(raw)
        .name("Temperature")
        .steps_per_day(24)
        .build();
    // Six hours of history predicting the next hour.
    dataset.set_sequential_representation(6, 1);
    let (t, c, h, w) = dataset.dims();
    println!(
        "dataset: {} — {t} steps of [{c} x {h} x {w}], {} samples",
        dataset.name(),
        dataset.len()
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let model = ConvLstm::new(c, 8, 3, 1, &mut rng);
    println!("model: ConvLSTM with {} parameters", model.num_parameters());

    let (train, val, test) = chronological_split(dataset.len());
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 8,
        learning_rate: 3e-3,
        ..TrainConfig::default()
    });
    let report = trainer.fit_grid(&model, &dataset, &train, &val);
    for (epoch, loss) in report.train_losses.iter().enumerate() {
        println!("epoch {:>2}: train loss {loss:.5}", epoch + 1);
    }

    let (mae, rmse) = trainer.evaluate_grid(&model, &dataset, &test);
    println!("\ntest MAE {mae:.4}, RMSE {rmse:.4} (normalised units)");

    // Persistence baseline: predict the last observed frame.
    let (p_mae, _) = persistence_error(&dataset, &test);
    println!("persistence baseline MAE {p_mae:.4}");
    if mae < p_mae {
        println!("ConvLSTM beats persistence — recurrence captures the dynamics.");
    } else {
        println!(
            "ConvLSTM is within {:.1}x of persistence after {} epochs; train longer \
             (more epochs / wider hidden state) to pull ahead.",
            mae / p_mae,
            report.epochs_run
        );
    }
}

fn persistence_error(dataset: &StGridDataset, indices: &[usize]) -> (f32, f32) {
    let mut mae_sum = 0.0;
    let mut count = 0;
    for &i in indices {
        if let StSample::Sequential { x, y } = dataset.get(i) {
            let t_hist = x.shape()[0];
            let last = x.narrow(0, t_hist - 1, t_hist);
            let target = y.narrow(0, 0, 1);
            mae_sum += last.sub(&target).abs().mean();
            count += 1;
        }
    }
    (mae_sum / count.max(1) as f32, 0.0)
}
