//! Quickstart: classify synthetic EuroSAT-style satellite scenes with
//! SatCNN in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use geotorchai::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // A small EuroSAT-style dataset: 10 classes, 13 spectral bands
    // (Table III geometry), 12 samples per class.
    let dataset = geotorchai::datasets::raster::RasterDataset::classification(
        "EuroSAT-mini",
        13,
        32, // reduced extent so the example finishes in seconds
        32,
        10,
        12,
        7,
    );
    println!(
        "dataset: {} ({} samples, {} classes, {} bands)",
        dataset.name(),
        dataset.len(),
        dataset.num_classes(),
        dataset.effective_bands()
    );

    let model = SatCnn::new(13, 32, 32, 10, &mut rng);
    println!("model: SatCNN with {} parameters", model.num_parameters());

    let (train, val, test) = shuffled_split(dataset.len(), 0);
    let trainer = Trainer::new(TrainConfig {
        epochs: 15,
        batch_size: 8,
        learning_rate: 2e-3,
        early_stopping_patience: Some(6),
        ..TrainConfig::default()
    });

    let report = trainer.fit_classifier(&model, &dataset, &train, &val);
    for (epoch, loss) in report.train_losses.iter().enumerate() {
        println!("epoch {:>2}: train loss {loss:.4}", epoch + 1);
    }

    let accuracy = trainer.evaluate_classifier(&model, &dataset, &test);
    println!("test accuracy: {:.1}%", accuracy * 100.0);
}
