//! Cloud segmentation on a 38-Cloud-style dataset with UNet (Table VI of
//! the paper).
//!
//! ```sh
//! cargo run --release --example raster_segmentation
//! ```

use geotorchai::prelude::*;
use geotorchai::train::metrics;
use rand::SeedableRng;

fn main() {
    // 48 cloud scenes at 32x32 (the paper's 38-Cloud tiles are 384x384;
    // the blob structure is preserved at reduced extent).
    let dataset = geotorchai::datasets::raster::RasterDataset::cloud38(48, 32, 9);
    println!("dataset: {} ({} scenes)", dataset.name(), dataset.len());

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model = UNet::new(4, 1, 4, &mut rng);
    println!("model: UNet with {} parameters", model.num_parameters());

    let (train, val, test) = chronological_split(dataset.len());
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        batch_size: 4,
        learning_rate: 5e-3,
        ..TrainConfig::default()
    });
    let report = trainer.fit_segmenter(&model, &dataset, &train, &val);
    for (epoch, loss) in report.train_losses.iter().enumerate() {
        println!("epoch {:>2}: train BCE {loss:.4}", epoch + 1);
    }

    let accuracy = trainer.evaluate_segmenter(&model, &dataset, &test);
    println!("\ntest pixel accuracy: {:.2}%", accuracy * 100.0);

    // Inspect one prediction's IoU.
    let batch = dataset.batch(&test[..1]);
    let logits = model.forward(&Var::constant(batch.x)).value();
    let iou = metrics::iou(&logits, &batch.masks.expect("segmentation masks"));
    println!("sample IoU: {iou:.3}");
}
