//! End-to-end GeoTorchAI pipeline (§V of the paper): raw taxi-trip events
//! → scalable preprocessing (STManager) → a YellowTrip-NYC-style
//! spatiotemporal tensor → DFtoTorch-style batching → model training.
//!
//! This is the workflow the paper's Listing 8 + Figure 5 describe, which
//! no other spatiotemporal DL framework supports without hand-written
//! Spark code.
//!
//! ```sh
//! cargo run --release --example end_to_end_pipeline
//! ```

use geotorchai::datasets::grid::GridDatasetBuilder;
use geotorchai::datasets::synth::TripGenerator;
use geotorchai::preprocessing::grid::{trips_dataframe, StGridConfig, StManager};
use geotorchai::prelude::*;
use rand::SeedableRng;

fn main() {
    // 1. Raw data: 200k synthetic taxi trips over ~3 weeks of NYC-like
    //    demand (hotspots + rush hours + weekend dips).
    let generator = TripGenerator::nyc_like(7).with_duration_days(21);
    let trips = generator.generate(200_000);
    println!("generated {} raw trip records", trips.len());

    let df = trips_dataframe(
        trips.iter().map(|t| t.pickup_lat).collect(),
        trips.iter().map(|t| t.pickup_lon).collect(),
        trips.iter().map(|t| t.timestamp).collect(),
    )
    .expect("well-formed trip columns")
    .repartition(8)
    .expect("repartition");
    println!(
        "raw DataFrame: {} rows in {} partitions (~{:.1} MB)",
        df.num_rows(),
        df.num_partitions(),
        df.approx_bytes() as f64 / 1e6
    );

    // 2. Scalable preprocessing: Listing 8 — point geometries, a 12x16
    //    grid, 30-minute slots, partition-parallel aggregation.
    let config = StGridConfig::new(12, 16, 1800);
    let (tensor, grid_frame) =
        StManager::get_st_grid_array(&df, "lat", "lon", "ts", &config).expect("preprocessing");
    println!(
        "spatiotemporal tensor: {:?} ({} events kept)",
        tensor.shape(),
        grid_frame.total_events().expect("counts")
    );

    // 3. Wrap as a YellowTrip-NYC dataset with the periodical
    //    representation and train DeepSTN+.
    let mut dataset = GridDatasetBuilder::new(tensor)
        .name("YellowTrip-NYC (preprocessed)")
        .steps_per_day(48)
        .build();
    dataset.set_periodical_representation(3, 2, 1);
    let (t, c, h, w) = dataset.dims();
    println!(
        "dataset: {t} steps of [{c} x {h} x {w}], {} samples",
        dataset.len()
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let model = DeepStnPlus::new(c, (3, 2, 1), h, w, 12, &mut rng);
    let (train, val, test) = chronological_split(dataset.len());
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        batch_size: 16,
        learning_rate: 2e-3,
        ..TrainConfig::default()
    });
    println!("\ntraining DeepSTN+ on the preprocessed tensor…");
    trainer.fit_grid(&model, &dataset, &train, &val);
    let (mae, rmse) = trainer.evaluate_grid(&model, &dataset, &test);
    println!("test MAE {mae:.4}, RMSE {rmse:.4} (normalised units)");
    println!("\nraw events → trainable model, no Spark/Sedona expertise required.");
}
