//! Spatiotemporal traffic prediction on the BikeNYC-DeepSTN benchmark
//! (Table IV of the paper): the periodical representation (Listing 4)
//! feeding a baseline Periodical CNN and DeepSTN+, showing the ordering
//! the paper reports (DeepSTN+ < PeriodicalCNN on MAE/RMSE).
//!
//! ```sh
//! cargo run --release --example traffic_prediction
//! ```

use geotorchai::prelude::*;
use rand::SeedableRng;

fn main() {
    // Three weeks of hourly bike flow on the 21x12 BikeNYC grid.
    let mut dataset = StGridDataset::bike_nyc_deepstn(21, 1);
    // Closeness 3 / period 4 / trend 2 — the ST-ResNet feature layout.
    dataset.set_periodical_representation(3, 4, 2);
    let (t, c, h, w) = dataset.dims();
    println!(
        "dataset: {} — {t} steps of [{c} x {h} x {w}], {} samples",
        dataset.name(),
        dataset.len()
    );

    let (train, val, test) = chronological_split(dataset.len());
    let trainer = Trainer::new(TrainConfig {
        epochs: 12,
        batch_size: 16,
        learning_rate: 2e-3,
        ..TrainConfig::default()
    });

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let cnn = PeriodicalCnn::new(c, (3, 4, 2), 16, &mut rng);
    let deepstn = DeepStnPlus::new(c, (3, 4, 2), h, w, 16, &mut rng);

    println!("\ntraining PeriodicalCNN ({} params)…", cnn.num_parameters());
    trainer.fit_grid(&cnn, &dataset, &train, &val);
    let (cnn_mae, cnn_rmse) = trainer.evaluate_grid(&cnn, &dataset, &test);

    println!("training DeepSTN+ ({} params)…", deepstn.num_parameters());
    trainer.fit_grid(&deepstn, &dataset, &train, &val);
    let (dsp_mae, dsp_rmse) = trainer.evaluate_grid(&deepstn, &dataset, &test);

    println!("\n{:<16} {:>8} {:>8}", "model", "MAE", "RMSE");
    println!("{:<16} {:>8.4} {:>8.4}", "PeriodicalCNN", cnn_mae, cnn_rmse);
    println!("{:<16} {:>8.4} {:>8.4}", "DeepSTN+", dsp_mae, dsp_rmse);
    if dsp_mae < cnn_mae {
        println!("\nDeepSTN+ wins, as in the paper's Table IV.");
    }
}
