//! Preprocess raw CSV trip records from disk — the workflow of the
//! paper's Listing 8 starting from files, exercising the CSV reader,
//! the spatial fast path, and the partitioned aggregation engine.
//!
//! ```sh
//! cargo run --release --example csv_preprocessing
//! ```

use geotorchai::dataframe::csv::{read_csv, write_csv, CsvOptions};
use geotorchai::dataframe::DType;
use geotorchai::datasets::synth::TripGenerator;
use geotorchai::preprocessing::grid::{trips_dataframe, StGridConfig, StManager};

fn main() {
    let dir = std::env::temp_dir().join(format!("geotorch_csv_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("yellow_tripdata.csv");

    // 1. Materialise a month of synthetic trip records as CSV (the role
    //    of the TLC download).
    let generator = TripGenerator::nyc_like(11).with_duration_days(30);
    let trips = generator.generate(50_000);
    let df = trips_dataframe(
        trips.iter().map(|t| t.pickup_lat).collect(),
        trips.iter().map(|t| t.pickup_lon).collect(),
        trips.iter().map(|t| t.timestamp).collect(),
    )
    .expect("columns");
    write_csv(&df, &path).expect("write csv");
    let bytes = std::fs::metadata(&path).expect("metadata").len();
    println!("wrote {} trips to {} ({:.1} MB)", trips.len(), path.display(), bytes as f64 / 1e6);

    // 2. Load it back with an explicit schema, partitioned as it streams.
    let options = CsvOptions {
        schema: Some(vec![DType::F64, DType::F64, DType::Ts]),
        rows_per_partition: 8_192,
        ..CsvOptions::default()
    };
    let loaded = read_csv(&path, &options).expect("read csv");
    println!(
        "loaded {} rows into {} partitions",
        loaded.num_rows(),
        loaded.num_partitions()
    );

    // 3. Straight into the Listing-8 pipeline.
    let config = StGridConfig::new(12, 16, 1800);
    let (tensor, frame) =
        StManager::get_st_grid_array(&loaded, "lat", "lon", "ts", &config).expect("pipeline");
    println!(
        "spatiotemporal tensor {:?}, {} events, {} time steps",
        tensor.shape(),
        frame.total_events().expect("counts"),
        frame.num_steps
    );

    std::fs::remove_dir_all(&dir).ok();
}
