//! # GeoTorchAI (Rust)
//!
//! GeoTorch-RS: deep learning and scalable data processing for raster
//! imagery and grid-based spatiotemporal datasets — a from-scratch Rust
//! reproduction of **GeoTorchAI** (Chowdhury & Sarwat, ICDE 2024).
//!
//! The module layout mirrors the paper's `geotorchai` Python package:
//!
//! * [`datasets`] — benchmark datasets (grid + raster) with the basic /
//!   sequential / periodical representations of Listings 2–4.
//! * [`models`] — grid models (Periodical CNN, ConvLSTM, ST-ResNet,
//!   DeepSTN+) and raster models (SatCNN, DeepSAT, DeepSAT V2, FCN,
//!   UNet, UNet++).
//! * [`transforms`] — raster transformation operations (Listing 7).
//! * [`preprocessing`] — scalable spatiotemporal + raster preprocessing
//!   on the partitioned DataFrame engine (Listings 8–9).
//! * [`converter`] — the DFtoTorch converter (Figure 7).
//! * [`nn`], [`tensor`] — the deep-learning substrate (autograd, layers,
//!   optimizers; dense tensors and kernels).
//! * [`train`] — training loops, metrics, early stopping, checkpoints.
//! * [`serve`] — batched inference serving: model registry, dynamic
//!   micro-batching scheduler, HTTP front-end with a metrics endpoint.
//! * [`dataframe`] — the Spark/Sedona-substrate columnar engine.
//!
//! ## Quickstart
//!
//! ```
//! use geotorchai::prelude::*;
//! use rand::SeedableRng;
//!
//! // EuroSAT-style classification in a few lines.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let dataset = RasterDataset::classification("demo", 3, 8, 8, 2, 8, 0);
//! let model = SatCnn::new(3, 8, 8, 2, &mut rng);
//! let (train, val, test) = shuffled_split(dataset.len(), 0);
//! let trainer = Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::default() });
//! trainer.fit_classifier(&model, &dataset, &train, &val);
//! let accuracy = trainer.evaluate_classifier(&model, &dataset, &test);
//! assert!(accuracy.is_finite());
//! ```

pub use geotorch_dataframe as dataframe;
pub use geotorch_nn as nn;
pub use geotorch_tensor as tensor;

/// Benchmark datasets and loaders (`geotorchai.datasets`).
pub mod datasets {
    pub use geotorch_datasets::loader::{chronological_split, shuffled_split, BatchIndices};
    pub use geotorch_datasets::synth;

    /// Grid-based spatiotemporal datasets (`geotorchai.datasets.grid`).
    pub mod grid {
        pub use geotorch_datasets::grid::{
            GridDatasetBuilder, Representation, StBatch, StGridDataset, StSample,
        };
    }

    /// Raster imagery datasets (`geotorchai.datasets.raster`).
    pub mod raster {
        pub use geotorch_datasets::raster::{extract_features, RasterBatchData, RasterDataset};
    }

    /// Windowed geo-samplers for scene-scale tiling (TorchGeo-style).
    pub mod samplers {
        pub use geotorch_datasets::samplers::{GridSampler, RandomSampler, Tile};
    }
}

/// Neural-network models (`geotorchai.models`).
pub mod models {
    pub use geotorch_models::{
        GridInput, GridModel, RasterClassifier, RepresentationKind, Segmenter,
    };

    /// Grid-based spatiotemporal models (`geotorchai.models.grid`).
    pub mod grid {
        pub use geotorch_models::grid::{ConvLstm, DeepStnPlus, PeriodicalCnn, StResNet};
    }

    /// Raster models (`geotorchai.models.raster`).
    pub mod raster {
        pub use geotorch_models::raster::{DeepSat, DeepSatV2, Fcn, SatCnn, UNet, UNetPlusPlus};
    }
}

/// Transformation operations (`geotorchai.transforms`).
pub mod transforms {
    /// Raster transforms (`geotorchai.transforms.raster`).
    pub mod raster {
        pub use geotorch_raster::transforms::{
            AppendNormalizedDifferenceIndex, AppendRatioIndex, ChannelJitter, Compose,
            DeleteBand, HorizontalFlip, InsertConstantBand, MaskOnThreshold, Normalize,
            NormalizeAll, NormalizeBand, RasterTransform, Rotate90, VerticalFlip,
        };
    }
}

/// Scalable preprocessing (`geotorchai.preprocessing`).
pub mod preprocessing {
    pub use geotorch_preprocess::{PreprocessError, PreprocessResult};

    /// Spatiotemporal grid preprocessing
    /// (`geotorchai.preprocessing.grid`).
    pub mod grid {
        pub use geotorch_preprocess::st_manager::{
            trips_dataframe, StGridConfig, StGridFrame, StManager,
        };
        pub use geotorch_preprocess::SpacePartition;
    }

    /// Grid re-partitioning (coarsening) helpers.
    pub mod repartition {
        pub use geotorch_preprocess::repartition::{coarsen_space, coarsen_time};
    }

    /// Raster preprocessing (`geotorchai.preprocessing.raster`).
    pub mod raster {
        pub use geotorch_preprocess::raster_processing::{RasterBatch, RasterProcessing};
    }

    /// The naive single-threaded baseline used by the Figure-8
    /// reproduction.
    pub mod baseline {
        pub use geotorch_preprocess::geopandas_like::get_st_grid_dataframe_naive;
    }
}

/// The DFtoTorch converter (§III-C): eager formatting plus the
/// pull-based streaming loader (`BatchStream` → `PrefetchLoader`).
pub mod converter {
    pub use geotorch_converter::{
        collect_then_batch, BatchStream, DfFormatter, FormattedFrame, FormattedPartition,
        FrameBatchStream, LoaderError, PrefetchLoader, RowTransformer, SpillBatchStream,
        TransformSpec,
    };
}

/// Raster data model and GTRF container I/O.
pub mod raster {
    pub use geotorch_raster::algebra;
    pub use geotorch_raster::glcm::{Glcm, GlcmDirection};
    pub use geotorch_raster::gtiff;
    pub use geotorch_raster::{
        core_of, BlendMode, GeoTransform, MosaicAccumulator, Raster, RasterError, RasterResult,
        Window,
    };
}

/// Training utilities, including the K-replica data-parallel trainer
/// (`Trainer::fit_*_replicated`, `Trainer::fit_stream`).
pub mod train {
    pub use geotorch_core::checkpoint;
    pub use geotorch_nn::schedule::{clip_grad_norm, CosineLr, LrSchedule, StepLr};
    pub use geotorch_core::metrics;
    pub use geotorch_core::trainer::grid_io;
    pub use geotorch_core::{
        IndexStepSource, StepSource, StopReason, StreamStepSource, TrainConfig, TrainError,
        TrainReport, Trainer, UpdateMode,
    };
}

/// Batched inference serving: registry, micro-batching scheduler, and
/// the HTTP front-end (`/predict/<model>`, `/healthz`, `/metrics`).
pub mod serve {
    pub use geotorch_serve::{
        run_mosaic, BatchConfig, ClassifierServe, GridServe, ModelClient, ModelWorker,
        MosaicStats, Registry, SegmenterServe, ServeConfig, ServeError, ServeModel, Server,
        TileConfig,
    };
}

/// Lightweight runtime counters and timers (off by default; flip on with
/// [`telemetry::set_enabled`] or run `repro --profile`).
pub mod telemetry {
    pub use geotorch_telemetry::{
        enabled, reset, set_enabled, snapshot, snapshot_json, snapshot_markdown,
    };
}

/// Everything a typical application needs.
pub mod prelude {
    pub use crate::datasets::grid::{StBatch, StGridDataset, StSample};
    pub use crate::datasets::raster::RasterDataset;
    pub use crate::datasets::{chronological_split, shuffled_split};
    pub use crate::models::grid::{ConvLstm, DeepStnPlus, PeriodicalCnn, StResNet};
    pub use crate::models::raster::{DeepSat, DeepSatV2, Fcn, SatCnn, UNet, UNetPlusPlus};
    pub use crate::models::{GridInput, GridModel, RasterClassifier, Segmenter};
    pub use crate::train::{TrainConfig, Trainer, UpdateMode};
    pub use geotorch_nn::{Layer, Module, Var};
    pub use geotorch_tensor::{Device, Tensor};
}
