//! Property-based integration tests over the training stack and
//! dataset invariants that span crates.

use geotorchai::datasets::grid::GridDatasetBuilder;
use geotorchai::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every representation's samples stay within the series bounds and
    /// agree with the documented sample count formula.
    #[test]
    fn representation_sample_counts(
        steps in 16usize..64,
        lead in 1usize..5,
        hist in 1usize..6,
        pred in 1usize..4,
    ) {
        let raw = Tensor::ones(&[steps, 4, 5, 1]);
        let mut ds = GridDatasetBuilder::new(raw).steps_per_day(4).build();

        ds.set_basic_representation(lead);
        prop_assert_eq!(ds.len(), steps - lead);
        if !ds.is_empty() {
            let _ = ds.get(ds.len() - 1); // must not panic
        }

        prop_assume!(steps > hist + pred);
        ds.set_sequential_representation(hist, pred);
        prop_assert_eq!(ds.len(), steps - hist - pred + 1);
        if !ds.is_empty() {
            let _ = ds.get(ds.len() - 1);
        }
    }

    /// Periodical samples need lags that fit; when they fit, shapes are
    /// exactly `len * C`.
    #[test]
    fn periodical_shapes(lc in 1usize..4, lp in 0usize..3, lt in 0usize..2) {
        let steps_per_day = 4;
        let steps = 7 * steps_per_day * 2 + 8; // two weeks + margin
        let raw = Tensor::ones(&[steps, 3, 4, 2]);
        let mut ds = GridDatasetBuilder::new(raw).steps_per_day(steps_per_day).build();
        ds.set_periodical_representation(lc, lp, lt);
        prop_assume!(!ds.is_empty());
        let StSample::Periodical { x_closeness, x_period, x_trend, y } = ds.get(0) else {
            return Err(TestCaseError::fail("wrong sample kind"));
        };
        prop_assert_eq!(x_closeness.shape()[0], lc * 2);
        prop_assert_eq!(x_period.shape()[0], lp * 2);
        prop_assert_eq!(x_trend.shape()[0], lt * 2);
        prop_assert_eq!(y.shape(), &[2, 3, 4][..]);
    }

    /// Normalised datasets always live in [0, 1] and denormalise back to
    /// the original scale.
    #[test]
    fn normalisation_bounds(seed in 0u64..50) {
        let ds = StGridDataset::taxi_nyc_stdn(8, seed);
        let StSample::Basic { x, .. } = ds.get(0) else {
            return Err(TestCaseError::fail("wrong sample kind"));
        };
        prop_assert!(x.min() >= 0.0 && x.max() <= 1.0);
        let denorm = ds.denormalize(&x);
        prop_assert!(denorm.min() >= -1e-3);
    }

    /// Split fractions always partition the index space.
    #[test]
    fn splits_partition_indices(n in 1usize..500) {
        let (train, val, test) = chronological_split(n);
        prop_assert_eq!(train.len() + val.len() + test.len(), n);
        let (train, val, test) = shuffled_split(n, 3);
        let mut all: Vec<usize> = train.into_iter().chain(val).chain(test).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// A single SGD step on a batch decreases that batch's loss for a
    /// small enough learning rate (descent property of the gradients).
    #[test]
    fn gradient_step_descends(seed in 0u64..20) {
        use geotorchai::nn::loss::mse_loss;
        use geotorchai::nn::optim::{Optimizer, Sgd};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let model = PeriodicalCnn::new(1, (2, 1, 0), 4, &mut rng);
        let input = geotorchai::models::GridInput::Periodical {
            closeness: Var::constant(Tensor::rand_uniform(&[2, 2, 6, 6], 0.0, 1.0, &mut rng)),
            period: Var::constant(Tensor::rand_uniform(&[2, 1, 6, 6], 0.0, 1.0, &mut rng)),
            trend: Var::constant(Tensor::zeros(&[2, 0, 6, 6])),
        };
        let target = Var::constant(Tensor::rand_uniform(&[2, 1, 6, 6], 0.0, 1.0, &mut rng));
        let loss_before = {
            let loss = mse_loss(&model.forward(&input), &target);
            loss.backward();
            loss.value().item()
        };
        let mut opt = Sgd::new(model.parameters(), 1e-3, 0.0);
        opt.step();
        let loss_after = mse_loss(&model.forward(&input), &target).value().item();
        prop_assert!(
            loss_after <= loss_before + 1e-6,
            "descent violated: {} -> {}",
            loss_before,
            loss_after
        );
    }
}
