//! Cross-crate integration tests: the full raw-data → preprocessing →
//! tensor → training pipelines the paper's architecture (Figure 3)
//! promises.

use geotorchai::datasets::grid::GridDatasetBuilder;
use geotorchai::datasets::synth::TripGenerator;
use geotorchai::preprocessing::baseline::get_st_grid_dataframe_naive;
use geotorchai::preprocessing::grid::{trips_dataframe, StGridConfig, StManager};
use geotorchai::prelude::*;
use rand::SeedableRng;

fn trips_df(n: usize) -> (geotorchai::dataframe::DataFrame, StGridConfig) {
    let generator = TripGenerator::nyc_like(5).with_duration_days(7);
    let trips = generator.generate(n);
    let (min_lon, min_lat, max_lon, max_lat) = generator.extent();
    let df = trips_dataframe(
        trips.iter().map(|t| t.pickup_lat).collect(),
        trips.iter().map(|t| t.pickup_lon).collect(),
        trips.iter().map(|t| t.timestamp).collect(),
    )
    .expect("trip columns");
    let config = StGridConfig {
        partitions_x: 8,
        partitions_y: 8,
        step_duration_sec: 3600,
        extent: Some(geotorchai::dataframe::Envelope::new(
            min_lon, min_lat, max_lon, max_lat,
        )),
    };
    (df, config)
}

#[test]
fn raw_trips_to_tensor_conserves_events() {
    let (df, config) = trips_df(20_000);
    let df = df.repartition(4).expect("repartition");
    let (tensor, frame) =
        StManager::get_st_grid_array(&df, "lat", "lon", "ts", &config).expect("pipeline");
    // Every trip was generated inside the extent, so every event lands.
    assert_eq!(tensor.sum() as i64, 20_000);
    assert_eq!(frame.total_events().expect("counts"), 20_000);
    assert_eq!(tensor.shape()[1], 8);
    assert_eq!(tensor.shape()[2], 8);
}

#[test]
fn partitioned_engine_matches_naive_baseline_end_to_end() {
    let (df, config) = trips_df(5_000);
    let partitioned = df.repartition(4).expect("repartition");
    let (fast, _) =
        StManager::get_st_grid_array(&partitioned, "lat", "lon", "ts", &config).expect("fast");
    let naive = get_st_grid_dataframe_naive(&df, "lat", "lon", "ts", &config)
        .expect("naive")
        .to_tensor()
        .expect("densify");
    assert_eq!(fast, naive);
}

#[test]
fn preprocessed_tensor_trains_a_grid_model() {
    let (df, config) = trips_df(30_000);
    let (tensor, _) =
        StManager::get_st_grid_array(&df, "lat", "lon", "ts", &config).expect("pipeline");
    let mut dataset = GridDatasetBuilder::new(tensor)
        .name("pipeline")
        .steps_per_day(24)
        .build();
    dataset.set_periodical_representation(2, 1, 0);
    let (_, c, _, _) = dataset.dims();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let model = PeriodicalCnn::new(c, (2, 1, 0), 8, &mut rng);
    let (train, val, test) = chronological_split(dataset.len());
    let trainer = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 8,
        learning_rate: 3e-3,
        early_stopping_patience: None,
        ..TrainConfig::default()
    });
    let report = trainer.fit_grid(&model, &dataset, &train, &val);
    assert!(
        report.train_losses.last().unwrap() <= report.train_losses.first().unwrap(),
        "training must not diverge: {:?}",
        report.train_losses
    );
    let (mae, rmse) = trainer.evaluate_grid(&model, &dataset, &test);
    assert!(mae.is_finite() && rmse.is_finite() && rmse >= mae * 0.99);
}

#[test]
fn converter_round_trips_preprocessed_frame() {
    use geotorchai::converter::{BatchStream, DfFormatter, FrameBatchStream, RowTransformer};
    use std::sync::Arc;
    let (df, config) = trips_df(5_000);
    let frame = {
        let with_points =
            StManager::add_spatial_points(&df, "lat", "lon", "pt").expect("points");
        StManager::get_st_grid_dataframe(&with_points, "pt", "ts", &config).expect("grid")
    };
    // The sparse (time_step, cell_id, count) frame maps straight into
    // tensor batches via the DFtoTorch converter's pull-based stream —
    // one batch in memory at a time, never the whole Vec.
    let formatter =
        DfFormatter::for_prediction(&["time_step", "cell_id"], &[2], &["count"], &[1])
            .expect("formatter");
    let formatted = formatter.format(&frame.frame).expect("format");
    assert_eq!(formatted.num_rows(), frame.frame.num_rows());
    let mut stream =
        FrameBatchStream::new(Arc::new(RowTransformer::new(64)), Arc::new(formatted));
    let mut rows = 0;
    let mut total_count = 0.0;
    while let Some((x, y)) = stream.next_batch().expect("stream") {
        assert_eq!(x.shape()[1], 2);
        rows += x.shape()[0];
        total_count += y.sum();
    }
    assert_eq!(rows, frame.frame.num_rows());
    assert_eq!(total_count as i64, frame.total_events().expect("counts"));
}

#[test]
fn checkpoint_round_trip_through_facade() {
    use geotorchai::train::checkpoint;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model = SatCnn::new(3, 8, 8, 2, &mut rng);
    let dataset = geotorchai::datasets::raster::RasterDataset::classification(
        "ckpt", 3, 8, 8, 2, 4, 0,
    );
    let batch = dataset.batch(&[0, 1]);
    let x = Var::constant(batch.x);
    let before = model.forward(&x, None).value();
    let path = std::env::temp_dir().join(format!("geotorch_it_{}.json", std::process::id()));
    checkpoint::save(&model, &path).expect("save");
    let model2 = SatCnn::new(3, 8, 8, 2, &mut rng);
    checkpoint::load(&model2, &path).expect("load");
    assert!(model2.forward(&x, None).value().allclose(&before, 1e-6));
    std::fs::remove_file(path).ok();
}
