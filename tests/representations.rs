//! Integration tests for the paper's Listings: the three dataset
//! representations (Listings 2–4), raster dataset usage (Listing 1),
//! transforms (Listing 7), and the raster preprocessing pipeline
//! (Listing 9) — asserting the feature matrix of Table I.

use geotorchai::datasets::raster::RasterDataset;
use geotorchai::preprocessing::raster::{RasterBatch, RasterProcessing};
use geotorchai::prelude::*;
use geotorchai::transforms::raster::{
    AppendNormalizedDifferenceIndex, Compose, NormalizeAll, RasterTransform,
};
use rand::SeedableRng;

/// Listing 2 — basic representation with a lead time.
#[test]
fn listing2_basic_representation() {
    let mut weather = StGridDataset::temperature(3, 0);
    weather.set_basic_representation(24);
    let StSample::Basic { x, y } = weather.get(0) else {
        panic!("expected basic sample");
    };
    assert_eq!(x.shape(), y.shape());
    assert_eq!(x.shape(), &[1, 32, 64]);
    assert_eq!(weather.len(), 3 * 24 - 24);
}

/// Listing 3 — sequential representation (history → prediction).
#[test]
fn listing3_sequential_representation() {
    let mut weather = StGridDataset::temperature(5, 0);
    weather.set_sequential_representation(48, 24);
    let StSample::Sequential { x, y } = weather.get(0) else {
        panic!("expected sequential sample");
    };
    assert_eq!(x.shape(), &[48, 1, 32, 64]);
    assert_eq!(y.shape(), &[24, 1, 32, 64]);
}

/// Listing 4 — periodical representation (closeness/period/trend).
#[test]
fn listing4_periodical_representation() {
    let mut weather = StGridDataset::temperature(31, 0);
    weather.set_periodical_representation(3, 4, 4);
    let StSample::Periodical {
        x_closeness,
        x_period,
        x_trend,
        y,
    } = weather.get(0) else {
        panic!("expected periodical sample");
    };
    assert_eq!(x_closeness.shape(), &[3, 32, 64]);
    assert_eq!(x_period.shape(), &[4, 32, 64]);
    assert_eq!(x_trend.shape(), &[4, 32, 64]);
    assert_eq!(y.shape(), &[1, 32, 64]);
}

/// Listing 1 — raster dataset with automatically extracted features.
#[test]
fn listing1_raster_dataset_with_features() {
    let eurosat = RasterDataset::eurosat(1, 0).with_additional_features();
    let (inputs, label, features) = eurosat.get(0);
    assert_eq!(inputs.shape(), &[13, 64, 64]);
    assert!(label < 10);
    assert_eq!(features.expect("features enabled").len(), 13);
}

/// Listing 7 — transform passed at dataset construction, applied on the
/// fly.
#[test]
fn listing7_transform_on_dataset() {
    let append = AppendNormalizedDifferenceIndex::new(1, 2);
    let data = RasterDataset::sat6(1, 0).with_transform(append);
    let (x, _, _) = data.get(0);
    assert_eq!(x.shape()[0], 5, "one appended band");
}

/// Listing 5/6 analogues — models constructed and applied through the
/// facade exactly as the paper's API sketches.
#[test]
fn listing5_6_model_construction() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let st_resnet = StResNet::new(2, (3, 4, 4), 8, 8, 8, 2, &mut rng);
    let input = geotorchai::models::GridInput::Periodical {
        closeness: Var::constant(Tensor::zeros(&[1, 6, 8, 8])),
        period: Var::constant(Tensor::zeros(&[1, 8, 8, 8])),
        trend: Var::constant(Tensor::zeros(&[1, 8, 8, 8])),
    };
    assert_eq!(st_resnet.forward(&input).shape(), vec![1, 2, 8, 8]);

    let deepsat = DeepSatV2::new(4, 28, 28, 6, 9, &mut rng);
    let images = Var::constant(Tensor::zeros(&[2, 4, 28, 28]));
    let features = Var::constant(Tensor::zeros(&[2, 9]));
    assert_eq!(deepsat.forward(&images, Some(&features)).shape(), vec![2, 6]);
}

/// Listing 9 — load → transform → write on GTRF rasters.
#[test]
fn listing9_raster_pipeline() {
    let dir = std::env::temp_dir().join(format!("geotorch_listing9_{}", std::process::id()));
    let input = dir.join("in");
    let output = dir.join("out");
    let images: Vec<geotorchai::raster::Raster> = (0..4)
        .map(|i| {
            geotorchai::raster::Raster::new(
                (0..3 * 16 * 16).map(|v| ((v + i) % 31) as f32 / 31.0).collect(),
                3,
                16,
                16,
            )
            .expect("raster")
        })
        .collect();
    std::fs::create_dir_all(&input).expect("mkdir");
    RasterProcessing::write_geotiff_images(&RasterBatch::from_rasters(images), &input)
        .expect("write");
    let chain = Compose::new()
        .add(AppendNormalizedDifferenceIndex::new(0, 1))
        .add(NormalizeAll);
    let n = RasterProcessing::process_directory(&input, &output, &chain).expect("pipeline");
    assert_eq!(n, 4);
    let back = RasterProcessing::load_geotiff_images(&output).expect("reload");
    assert!(back.rasters.iter().all(|r| r.bands() == 4));
    std::fs::remove_dir_all(&dir).ok();
}

/// Table I's feature matrix: spatial + temporal + grid + raster +
/// scalable preprocessing all present in one framework.
#[test]
fn table1_feature_matrix() {
    // Grid + temporal: the periodical representation exists.
    let mut ds = StGridDataset::yellowtrip_nyc(8, 0);
    ds.set_periodical_representation(2, 1, 1);
    assert!(!ds.is_empty());
    // Raster: datasets + models exist.
    assert_eq!(RasterDataset::sat4(1, 0).num_classes(), 4);
    // Scalable preprocessing: the partitioned engine is exercised in
    // end_to_end.rs; here we assert the API surface exists.
    let _ = geotorchai::preprocessing::grid::StManager::add_spatial_points;
}

/// Transforms compose like torchvision.
#[test]
fn transforms_compose() {
    let chain = Compose::new()
        .add(AppendNormalizedDifferenceIndex::new(0, 1))
        .add(AppendNormalizedDifferenceIndex::new(0, 2))
        .add(NormalizeAll);
    assert_eq!(chain.len(), 3);
    let raster = geotorchai::raster::Raster::new(vec![0.5; 3 * 4 * 4], 3, 4, 4).expect("raster");
    let out = chain.apply(&raster).expect("apply");
    assert_eq!(out.bands(), 5);
}
